"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check FILE``
    Type check an annotated ShadowDP source file.
``ir FILE``
    Type check and dump the checked body's basic-block CFG (the
    ``lower_ir`` stage artifact): blocks, edges, loop headers with
    their invariant annotations, and graph statistics.
``transform FILE``
    Type check and print the transformed target program.
``verify FILE [--mode unroll|invariant] [--bind name=value ...]``
    Run the full pipeline and report the verification outcome.
``obligations FILE [--json]``
    List the program's proof obligations — stable content-derived ids,
    CFG provenance (region/block/iteration), path-condition depth and
    the discharge-plan unit each belongs to — *without* solving
    anything.
``pipeline FILE [FILE ...] [--stage STAGE] [--json]``
    Run the staged pipeline, reporting per-stage timings, solver-query
    counts and cache hits; with several files the stages share one
    memoization cache and one solver query cache (``Pipeline.run_many``).

Solver flags (``verify`` and ``pipeline``): ``--jobs N`` discharges
independent obligation units on ``N`` workers, ``--backend`` pins a
discharge backend (serial/threaded/process/oneshot) explicitly — the
``process`` backend solves units on worker processes for real multicore
speedup with byte-identical results — ``--store PATH`` enables the
persistent obligation store (``REPRO_STORE`` env sets a default), so
verdicts are reused across runs by content id, ``--no-incremental``
disables push/pop context reuse (one-shot solver per query),
``--fail-fast`` stops discharging at the first refutation,
``--progress`` streams discharge events (units started/finished,
obligations discharged/refuted) as they happen, ``--solver-stats``
prints query/cache/solve-call counters after the verdict, and
``--profile`` additionally reports the inner-loop solver profile (SAT
decisions/propagations/conflicts/restarts, simplex pivots,
interned-node hits), and ``--witness`` emits a self-contained proof
certificate (Farkas coefficients + DRUP-style clause trail) for every
valid obligation, persisted alongside the verdict when a store is
active.
``cache ACTION``
    Inspect or maintain the persistent obligation store: ``stats``,
    ``gc`` (``--max-age-days`` / ``--max-entries``), ``clear``,
    ``path``.
``witness ACTION``
    Proof-certificate tooling: ``show FILE`` verifies with witnesses
    on and prints per-obligation certificate summaries (``--oid`` dumps
    one certificate's canonical JSON), ``check FILE`` re-validates a
    certificate file with the trusted kernel alone (exit 1 on
    rejection), ``sweep`` re-validates every stored certificate for the
    registry — zero solver calls; ``--populate`` verifies first.
``run FILE [--input name=value ...] [--seed N]``
    Execute the source program with real Laplace noise.
``table1``
    Regenerate the paper's Table 1 (see also benchmarks/).
``serve [--socket PATH] [--port N] [--warm] [--max-concurrent N]``
    Run the long-lived verification service: one warm pipeline (stage
    memo + solver query cache) shared across requests, discharge events
    streamed to clients, graceful drain on SIGTERM/Ctrl-C.  ``--warm``
    preloads the full registry sweep before accepting connections.
``client [--socket PATH | --port N] ACTION``
    Talk to a running server: ``status`` (cache stats, uptime,
    counters), ``verify`` (``--spec NAME`` or ``--file FILE``),
    ``sweep`` (the whole registry), ``witness`` (``--oid ID`` fetches a
    stored certificate and re-validates it server-side; ``--full``
    ships the canonical JSON), ``ping``, ``shutdown``.

``repro --version`` prints the package version and the serve-protocol
revision (the server embeds both in its handshake and status reply).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from fractions import Fraction

from repro.core.errors import ShadowDPError
from repro.lang.parser import ParseError, parse_expr
from repro.lang.pretty import pretty_command
from repro.pipeline import STAGES, Pipeline
from repro.verify.verifier import VerificationConfig


def _read_source(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _parse_bindings(pairs):
    bindings = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        try:
            if not (name and sep):
                raise ValueError(pair)
            bindings[name] = Fraction(value)
        except (ValueError, ZeroDivisionError):
            raise SystemExit(
                f"error: --bind expects NAME=VALUE with a rational VALUE, got {pair!r}"
            )
    return bindings


#: Single source of truth for the verification flags: argparse reads the
#: defaults from here and ``_config_from_args`` falls back to the same
#: values, so the two can never drift.
_VERIFICATION_FLAG_DEFAULTS = {
    "mode": "unroll",
    "unroll": 32,
    "jobs": 1,
    "backend": None,
    "store": None,
    "no_incremental": False,
    "fail_fast": False,
    "progress": False,
    "solver_stats": False,
    "profile": False,
    "faults": None,
    "witness": False,
}


def _flag_default(args, name: str):
    return getattr(args, name, _VERIFICATION_FLAG_DEFAULTS[name])


def _store_from_args(args):
    """The persistent-store path: ``--store`` wins, then ``REPRO_STORE``."""
    from repro.verify.store import STORE_ENV_VAR

    store = _flag_default(args, "store")
    if store is None:
        store = os.environ.get(STORE_ENV_VAR) or None
    return store


def _config_from_args(args) -> VerificationConfig:
    return VerificationConfig(
        mode=_flag_default(args, "mode"),
        bindings=_parse_bindings(getattr(args, "bind", None)),
        assumptions=tuple(parse_expr(a) for a in (getattr(args, "assume", None) or ())),
        unroll_limit=_flag_default(args, "unroll"),
        incremental=not _flag_default(args, "no_incremental"),
        jobs=_flag_default(args, "jobs"),
        backend=_flag_default(args, "backend"),
        fail_fast=_flag_default(args, "fail_fast"),
        profile=_flag_default(args, "profile"),
        store=_store_from_args(args),
        witness=_flag_default(args, "witness"),
    )


def _progress_sink(args):
    """An event printer for ``--progress``, or None when not asked for."""
    from repro.verify.discharge import (
        EarlyExit,
        ObligationDischarged,
        ObligationRefuted,
        RoundFinished,
        UnitFinished,
        UnitStarted,
    )

    if not _flag_default(args, "progress"):
        return None

    def emit(event) -> None:
        if isinstance(event, UnitStarted):
            print(f"  [{event.unit}] started ({event.obligations} obligations)")
        elif isinstance(event, ObligationDischarged):
            note = " (cached)" if event.cached else ""
            print(f"  [{event.unit}] ok {event.oid} {event.tag}{note}")
        elif isinstance(event, ObligationRefuted):
            print(f"  [{event.unit}] REFUTED {event.oid} {event.tag}")
            if event.counterexample:
                print(f"      {event.counterexample}")
        elif isinstance(event, UnitFinished):
            stats = event.stats
            print(
                f"  [{event.unit}] finished in {event.seconds:.3f}s "
                f"({stats['solve_calls']} solves, {stats['cache_hits']} cache hits)"
            )
        elif isinstance(event, EarlyExit):
            print(f"  [{event.unit}] early exit: {event.reason}")
        elif isinstance(event, RoundFinished):
            print(
                f"  [houdini] round {event.round}: pruned {event.pruned}, "
                f"{event.surviving} surviving"
            )

    return emit


def _print_solver_stats(stats, indent: str = "") -> None:
    print(
        f"{indent}solver: {stats['queries']} queries, "
        f"{stats['cache_hits']} cache hits, {stats['solve_calls']} solves, "
        f"{stats['pushes']} pushes/{stats['pops']} pops, "
        f"backend={stats.get('backend', 'serial')} "
        f"({stats.get('units', 0)} units, jobs={stats['jobs']})"
    )
    if stats.get("witnesses") is not None:
        print(f"{indent}witnesses: {stats['witnesses']} certificates collected")
    store = stats.get("store")
    if store is not None:
        degraded = " [DEGRADED: memory-only]" if store.get("degraded") else ""
        busy = (
            f", {store['busy_retries']} busy retries"
            if store.get("busy_retries")
            else ""
        )
        witnessed = ""
        if store.get("validated_hits") or store.get("witness_rejects"):
            witnessed = (
                f", {store.get('validated_hits', 0)} validated hits"
                f", {store.get('witness_rejects', 0)} witness rejects"
            )
        print(
            f"{indent}store: {store['hits']} hits, {store['misses']} misses, "
            f"{store['writes']} writes, {store['invalid']} invalid "
            f"({store.get('entries', 0)} entries on disk){busy}{witnessed}{degraded}"
        )
    recovery = stats.get("recovery")
    if recovery:
        print(
            f"{indent}recovery: {recovery['pool_restarts']} pool restart(s), "
            f"{recovery['retries']} retry(ies), "
            f"{len(recovery['recovered_units'])} unit(s) re-solved serially"
        )
        for incident in recovery["incidents"]:
            print(f"{indent}  incident: {incident}")
    workers = stats.get("workers")
    if workers:
        for pid, row in sorted(workers.items()):
            print(
                f"{indent}worker {pid}: {row['units']} units, "
                f"{row['solve_calls']} solves, {row['cache_hits']} cache hits"
            )


def _print_profile(profile, indent: str = "") -> None:
    """Render the inner-loop SolverProfile counters, grouped by layer."""
    groups = (
        ("sat", ("decisions", "propagations", "conflicts", "restarts",
                 "learned_clauses", "deleted_clauses")),
        ("theory", ("pivots", "bound_asserts", "theory_conflicts")),
        ("terms", ("intern_hits", "intern_misses")),
        ("loop", ("solve_calls", "rounds")),
    )
    for label, names in groups:
        rendered = ", ".join(f"{name}={profile.get(name, 0)}" for name in names)
        print(f"{indent}profile[{label}]: {rendered}")


def cmd_check(args) -> int:
    run = Pipeline().run(_read_source(args.file), stop_after="check")
    checked = run.checked
    mode = "aligned-only (LightDP fragment)" if checked.aligned_only else "shadow execution"
    print(f"{run.name}: type checks [{mode}; {checked.solver_queries} solver queries]")
    return 0


def cmd_ir(args) -> int:
    from repro.ir import cfg as ir_cfg

    run = Pipeline().run(_read_source(args.file), stop_after="lower_ir")
    ir = run.ir
    stats = ir.stats()
    print(
        f"{run.name}: {stats['blocks']} blocks, {stats['edges']} edges, "
        f"{stats['loops']} loops"
    )
    print(ir_cfg.dump(ir.cfg))
    return 0


def cmd_transform(args) -> int:
    run = Pipeline().run(_read_source(args.file), stop_after="optimize")
    print(pretty_command(run.target.body))
    return 0


def cmd_obligations(args) -> int:
    from repro.verify.discharge import DischargePlan
    from repro.verify.verifier import iter_obligations

    run = Pipeline().run(_read_source(args.file), stop_after="optimize")
    config = _config_from_args(args)
    plan = DischargePlan.from_obligations(iter_obligations(run.target, config))
    if args.json:
        data = plan.to_dict()
        data["name"] = run.name
        data["mode"] = config.mode
        print(json.dumps(data, indent=2))
        return 0
    obligations = plan.obligations
    print(
        f"{run.name}: {len(obligations)} obligations in {len(plan.units)} "
        f"discharge units [mode={config.mode}]"
    )
    for unit in plan.units:
        print(f"  {unit.uid}  (base depth {len(unit.base)})")
        for _, obligation, _ in unit.members:
            provenance = obligation.provenance
            where = provenance.describe() if provenance is not None else "?"
            print(
                f"    {obligation.oid}  {obligation.tag:<20s} {where:<28s} "
                f"depth {provenance.path_depth if provenance else '?'}"
            )
            print(f"        {obligation.describe()}")
    return 0


def cmd_verify(args) -> int:
    run = Pipeline(config=_config_from_args(args)).run(
        _read_source(args.file), on_event=_progress_sink(args)
    )
    outcome = run.outcome
    print(outcome.describe())
    for failure in outcome.failures:
        print("  " + failure.describe())
    if args.solver_stats:
        _print_solver_stats(outcome.solver_stats())
    if args.profile and outcome.profile is not None:
        _print_profile(outcome.profile)
    return 0 if outcome.verified else 1


def cmd_pipeline(args) -> int:
    pipe = Pipeline(config=_config_from_args(args))
    runs = pipe.run_many(
        [_read_source(path) for path in args.files],
        stop_after=args.stage,
        on_event=_progress_sink(args),
        stop_on_failure=_flag_default(args, "fail_fast"),
    )
    if args.json:
        print(json.dumps([run.to_dict() for run in runs], indent=2))
    else:
        for run in runs:
            print(f"{run.name}  (sha256 {run.source_hash[:12]})")
            for stage in STAGES:
                result = run.stages.get(stage)
                if result is None:
                    continue
                cached = "  [cached]" if result.cached else ""
                queries = (
                    f"  {result.solver_queries:5d} solver queries"
                    if result.solver_queries
                    else ""
                )
                print(f"  {stage:<8s} {result.seconds:8.3f}s{queries}{cached}")
            print(f"  total    {run.seconds:8.3f}s  {run.solver_queries} solver queries")
            if run.outcome is not None:
                print(f"  {run.outcome.describe()}")
                for failure in run.outcome.failures:
                    print("    " + failure.describe())
                if args.solver_stats:
                    _print_solver_stats(run.outcome.solver_stats(), indent="  ")
                if args.profile and run.outcome.profile is not None:
                    _print_profile(run.outcome.profile, indent="  ")
            print()
    failed = any(run.outcome is not None and not run.outcome.verified for run in runs)
    return 1 if failed else 0


def cmd_run(args) -> int:
    from repro.lang.parser import parse_function
    from repro.semantics.interpreter import RandomNoise, run_function

    function = parse_function(_read_source(args.file))
    inputs = {}
    for pair in args.input or ():
        name, sep, value = pair.partition("=")
        try:
            if not (name and sep):
                raise ValueError(pair)
            if "," in value:
                inputs[name] = tuple(float(v) for v in value.split(","))
            else:
                inputs[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"error: --input expects NAME=VALUE (or NAME=V1,V2,...), got {pair!r}"
            )
    result, interp = run_function(function, inputs, noise=RandomNoise(seed=args.seed))
    print(f"result: {result}")
    print(f"samples drawn: {len(interp.samples)}")
    return 0


def cmd_table1(args) -> int:
    from benchmarks.table1 import generate_table1, render_table1  # type: ignore

    rows = generate_table1()
    print(render_table1(rows))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import VerifyServer

    from repro.verify.store import STORE_ENV_VAR

    try:
        server = VerifyServer(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            max_concurrent=args.max_concurrent,
            request_timeout=args.request_timeout,
            warm=args.warm,
            store=args.store or os.environ.get(STORE_ENV_VAR) or None,
            quiet=args.quiet,
        )
    except ValueError as err:
        raise SystemExit(f"error: {err}")
    try:
        asyncio.run(server.run(install_signal_handlers=True))
    except KeyboardInterrupt:
        pass
    return 0


def _client_event_printer(args):
    """A printer for streamed wire events, or None without --progress."""
    if not getattr(args, "progress", False):
        return None

    def emit(event) -> None:
        kind = event.get("kind")
        if kind == "unit-started":
            print(f"  [{event['unit']}] started ({event['obligations']} obligations)")
        elif kind == "obligation-discharged":
            note = " (cached)" if event.get("cached") else ""
            print(f"  [{event['unit']}] ok {event['oid']} {event['tag']}{note}")
        elif kind == "obligation-refuted":
            print(f"  [{event['unit']}] REFUTED {event['oid']} {event['tag']}")
            if event.get("counterexample"):
                print(f"      {event['counterexample']}")
        elif kind == "unit-finished":
            print(f"  [{event['unit']}] finished in {event['seconds']:.3f}s")
        elif kind == "early-exit":
            print(f"  [{event['unit']}] early exit: {event['reason']}")

    return emit


def _client_wire_config(args):
    """The verify request's ``config`` dict from the client flags."""
    config = {}
    if getattr(args, "mode", None):
        config["mode"] = args.mode
    bindings = _parse_bindings(getattr(args, "bind", None))
    if bindings:
        config["bindings"] = {name: str(value) for name, value in bindings.items()}
    if getattr(args, "assume", None):
        config["assumptions"] = list(args.assume)
    if getattr(args, "unroll", None) is not None:
        config["unroll_limit"] = args.unroll
    if getattr(args, "jobs", None) is not None:
        config["jobs"] = args.jobs
    if getattr(args, "backend", None):
        config["backend"] = args.backend
    if getattr(args, "fail_fast", False):
        config["fail_fast"] = True
    if getattr(args, "witness", False):
        config["witness"] = True
    return config or None


def _print_wire_result(result, json_mode: bool) -> None:
    if json_mode:
        print(json.dumps(result, indent=2, sort_keys=True))
        return
    outcome = result["outcome"]
    counters = outcome["counters"]
    verdict = "verified" if outcome["verified"] else "REFUTED"
    cached = " [cached]" if result.get("cached") else ""
    print(
        f"{result['name']}: {verdict} — {outcome['obligations_total']} obligations, "
        f"{counters['solve_calls']} solves, {counters['cache_hits']} cache hits"
        f"{cached}"
    )
    for failure in outcome["failures"]:
        print("  " + failure["description"])


def _print_status(status) -> None:
    server, requests = status["server"], status["requests"]
    cache, memo = status["query_cache"], status["stage_memo"]
    print(
        f"repro-serve {server['version']} (protocol {server['protocol']}), "
        f"up {server['uptime_seconds']:.0f}s"
        f"{', draining' if server['draining'] else ''}"
    )
    warmed = server["warmed"]
    print(
        f"  workers: {server['max_concurrent']}, "
        f"warmed: {len(warmed)} algorithm(s)"
    )
    print(
        f"  requests: {requests['active']} active, {requests['completed']} completed, "
        f"{requests['cancelled']} cancelled, {requests['failed']} failed, "
        f"{requests['rejected']} rejected"
    )
    print(
        f"  query cache: {cache['entries']} entries, {cache['hits']} hits, "
        f"{cache['misses']} misses, {cache['pending']} in flight"
    )
    print(
        f"  stage memo: {memo['entries']} entries, "
        f"{sum(memo['hits'].values())} hits, {sum(memo['misses'].values())} misses"
    )
    store = status.get("obligation_store")
    if store is not None:
        print(
            f"  obligation store: {store['entries']} entries at {store['path']}, "
            f"{store['hits']} hits, {store['misses']} misses, "
            f"{store['writes']} writes"
        )
        print(
            f"    witnesses: {store.get('witnesses', 0)} stored, "
            f"{store.get('validated_hits', 0)} validated hits, "
            f"{store.get('witness_rejects', 0)} rejects"
        )


def cmd_client(args) -> int:
    from repro.serve.client import ServeClient, ServeError

    try:
        client = ServeClient(socket_path=args.socket, host=args.host, port=args.port)
    except (ServeError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    with client:
        try:
            if args.action == "status":
                status = client.status()
                if args.json:
                    print(json.dumps(status, indent=2, sort_keys=True))
                else:
                    _print_status(status)
                return 0
            if args.action == "health":
                health = client.health()
                if args.json:
                    print(json.dumps(health, indent=2, sort_keys=True))
                else:
                    print(
                        f"{health['status']} (up {health['uptime_seconds']:.0f}s, "
                        f"{health['inflight']}/{health['max_queue']} in flight)"
                    )
                    for cause in health["causes"]:
                        print(f"  cause: {cause}")
                return 0 if health["status"] == "ok" else 1
            if args.action == "ping":
                client.ping()
                print("pong")
                return 0
            if args.action == "shutdown":
                client.shutdown()
                print("server draining")
                return 0
            on_event = _client_event_printer(args)
            config = _client_wire_config(args)
            if args.action == "witness":
                if not args.oid:
                    raise SystemExit("error: client witness needs --oid")
                if bool(args.file) == bool(args.spec):
                    raise SystemExit(
                        "error: client witness needs exactly one of --file and --spec"
                    )
                if args.spec and len(args.spec) != 1:
                    raise SystemExit("error: client witness takes exactly one --spec")
                out = client.witness(
                    args.oid,
                    source=_read_source(args.file) if args.file else None,
                    spec=args.spec[0] if args.spec else None,
                    config=config,
                    full=args.full,
                )
                if args.json:
                    print(json.dumps(out, indent=2, sort_keys=True))
                elif not out["found"]:
                    print(f"{args.oid}: no stored verdict")
                elif not out.get("witnessed"):
                    verdict = "valid" if out["valid"] else "refuted"
                    print(f"{args.oid}: {verdict}, no certificate stored")
                elif out.get("validated"):
                    summary = out["summary"]
                    print(
                        f"{args.oid}: certificate validated — "
                        f"{summary['inputs']} inputs, {summary['lemmas']} lemmas, "
                        f"{summary['learned']} learned clauses, "
                        f"{summary['atoms']} atoms"
                    )
                    if args.full:
                        print(out["certificate"])
                else:
                    print(f"{args.oid}: certificate REJECTED — {out.get('error')}")
                return 0 if out.get("validated") else 1
            if args.action == "sweep":
                results = client.sweep(
                    specs=args.spec or None,
                    config=config,
                    timeout=args.timeout,
                    on_event=on_event,
                )
                for result in results:
                    _print_wire_result(result, args.json)
                return 0 if all(r["outcome"]["verified"] for r in results) else 1
            # verify
            if bool(args.file) == bool(args.spec):
                raise SystemExit(
                    "error: client verify needs exactly one of --file and --spec"
                )
            if args.spec and len(args.spec) != 1:
                raise SystemExit("error: client verify takes exactly one --spec")
            result = client.verify(
                source=_read_source(args.file) if args.file else None,
                spec=args.spec[0] if args.spec else None,
                config=config,
                timeout=args.timeout,
                on_event=on_event,
            )
            _print_wire_result(result, args.json)
            return 0 if result["outcome"]["verified"] else 1
        except ServeError as err:
            print(f"error [{err.code}]: {err}", file=sys.stderr)
            return 2


def cmd_cache(args) -> int:
    from repro.verify.store import (
        STORE_ENV_VAR,
        ObligationStore,
        default_store_path,
    )

    path = args.store or os.environ.get(STORE_ENV_VAR) or default_store_path()
    if args.cache_action == "path":
        print(path)
        return 0
    store = ObligationStore(path)
    if args.cache_action == "stats":
        stats = store.stats()
        breakdown = store.breakdown()
        if args.json:
            stats["breakdown"] = breakdown
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"store: {stats['path']}")
        print(
            f"  {stats['entries']} entries ({breakdown['valid']} valid, "
            f"{breakdown['refuted']} refuted), {stats['bytes']} bytes, "
            f"schema v{stats['schema_version']}"
        )
        print(
            f"  witnesses: {stats['witnesses']} of {breakdown['valid']} "
            f"valid entries carry a proof certificate"
        )
        print(
            f"  traffic (this process): {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['writes']} writes, "
            f"{stats['invalid']} invalid, "
            f"{stats['validated_hits']} validated hits, "
            f"{stats['witness_rejects']} witness rejects"
        )
        return 0
    if args.cache_action == "gc":
        if args.max_age_days is None and args.max_entries is None:
            raise SystemExit(
                "error: cache gc needs --max-age-days and/or --max-entries"
            )
        removed = store.gc(
            max_age_days=args.max_age_days, max_entries=args.max_entries
        )
        print(f"removed {removed} entries ({store.entry_count()} remain)")
        return 0
    if args.cache_action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries")
        return 0
    raise SystemExit(f"error: unknown cache action {args.cache_action!r}")


def _witness_show(args) -> int:
    """Discharge one file with witnesses on; print per-oid summaries."""
    from dataclasses import replace

    from repro.verify.verifier import prepare_generator, target_cfg

    config = replace(_config_from_args(args), witness=True)
    run = Pipeline().run(_read_source(args.file), stop_after="optimize")
    generator, checker = prepare_generator(run.target, config)
    failures = checker.discharge_stream(
        generator.stream(target_cfg(run.target, config)),
        emit=_progress_sink(args),
    )
    refuted = {failure.obligation.oid for failure in failures}
    if args.oid is not None:
        text = checker.witness_text(args.oid)
        if text is None:
            known = any(ob.oid == args.oid for ob in generator.obligations)
            what = "no certificate" if known else "no such obligation"
            print(f"error: {what} for {args.oid!r}", file=sys.stderr)
            return 1
        print(text)
        return 0
    print(
        f"{run.name}: {len(checker.certificates)} certificates for "
        f"{len(generator.obligations)} obligations "
        f"[fingerprint {checker.store_fingerprint[:12]}]"
    )
    for obligation in generator.obligations:
        certificate = checker.certificates.get(obligation.oid)
        if obligation.oid in refuted:
            status = "refuted (no certificate)"
        elif certificate is None:
            status = "valid, no certificate"
        else:
            summary = certificate.summary()
            status = (
                f"{summary['inputs']} inputs, {summary['lemmas']} lemmas, "
                f"{summary['learned']} learned, {summary['atoms']} atoms"
            )
        print(f"  {obligation.oid}  {obligation.tag:<20s} {status}")
    return 0 if not failures else 1


def _witness_check(args) -> int:
    """Validate one serialized certificate with the trusted checker."""
    from repro.witness import Certificate, WitnessError, validate

    try:
        certificate = Certificate.from_json(_read_source(args.file))
        checked = validate(certificate)
    except WitnessError as err:
        print(f"REJECTED [{err.step}]: {err.detail}", file=sys.stderr)
        return 1
    oid = certificate.oid or "<unbound>"
    print(
        f"{oid}: certificate validated — {checked['inputs']} inputs, "
        f"{checked['lemmas']} lemmas, {checked['rup_steps']} RUP steps"
    )
    return 0


def _witness_sweep(args) -> int:
    """Re-validate every stored certificate across the registry.

    Pure trusted-kernel work: obligations are enumerated symbolically
    and verdicts come from the store — no SAT/simplex solver is ever
    constructed.  Exit 0 only when every valid obligation's certificate
    is present and checks.
    """
    from dataclasses import replace

    from repro.algorithms import registry
    from repro.pipeline import spec_config
    from repro.verify.store import (
        STORE_ENV_VAR,
        ObligationStore,
        default_store_path,
    )
    from repro.verify.verifier import prepare_generator, target_cfg, verify_target
    from repro.witness import Certificate, WitnessError, validate

    path = args.store or os.environ.get(STORE_ENV_VAR) or default_store_path()
    store = ObligationStore(path)
    specs = registry.all_specs(include_buggy=False)
    if args.spec:
        specs = [registry.get(name) for name in args.spec]
    pipe = Pipeline()
    totals = {"missing": 0, "refuted": 0, "unwitnessed": 0, "validated": 0, "rejected": 0}
    rows = []
    for spec in specs:
        config = replace(spec_config(spec), store=store, witness=True)
        run = pipe.run(spec.source, config=config, stop_after="optimize")
        if args.populate:
            verify_target(run.target, config)
        generator, checker = prepare_generator(run.target, config)
        counts = dict.fromkeys(totals, 0)
        for obligation in generator.stream(target_cfg(run.target, config)):
            verdict = store.lookup(obligation.oid, checker.store_fingerprint)
            if verdict is None:
                counts["missing"] += 1
            elif not verdict.valid:
                counts["refuted"] += 1
            elif verdict.witness is None:
                counts["unwitnessed"] += 1
            else:
                try:
                    validate(Certificate.from_json(verdict.witness))
                    counts["validated"] += 1
                except WitnessError:
                    counts["rejected"] += 1
        for key, value in counts.items():
            totals[key] += value
        rows.append({"spec": spec.name, **counts})
    if args.json:
        print(json.dumps({"specs": rows, "totals": totals}, indent=2, sort_keys=True))
    else:
        for row in rows:
            print(
                f"{row['spec']:<24s} {row['validated']} validated, "
                f"{row['refuted']} refuted, {row['unwitnessed']} unwitnessed, "
                f"{row['missing']} missing, {row['rejected']} rejected"
            )
        print(
            f"total: {totals['validated']} certificates validated with zero "
            f"solver calls ({totals['refuted']} refuted, "
            f"{totals['unwitnessed']} unwitnessed, {totals['missing']} missing, "
            f"{totals['rejected']} rejected)"
        )
    clean = not (totals["missing"] or totals["unwitnessed"] or totals["rejected"])
    return 0 if clean else 1


def cmd_witness(args) -> int:
    if args.witness_action == "show":
        return _witness_show(args)
    if args.witness_action == "check":
        return _witness_check(args)
    if args.witness_action == "sweep":
        return _witness_sweep(args)
    raise SystemExit(f"error: unknown witness action {args.witness_action!r}")


def _add_verification_flags(parser) -> None:
    defaults = _VERIFICATION_FLAG_DEFAULTS
    parser.add_argument(
        "--mode", choices=("unroll", "invariant"), default=defaults["mode"]
    )
    parser.add_argument("--bind", action="append", metavar="NAME=VALUE")
    parser.add_argument("--assume", action="append", metavar="EXPR")
    parser.add_argument("--unroll", type=int, default=defaults["unroll"])
    parser.add_argument(
        "--jobs",
        type=int,
        default=defaults["jobs"],
        metavar="N",
        help="discharge independent obligation units on N worker threads "
        "(structural concurrency; GIL-bound, not a wall-clock multiplier)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threaded", "process", "oneshot"),
        default=defaults["backend"],
        help="pin the discharge backend explicitly (default: derived from "
        "--jobs/--no-incremental; identical verdicts either way; 'process' "
        "solves units on worker processes for real multicore speedup)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=defaults["store"],
        help="persistent obligation store: verdicts keyed by content id are "
        "reused across runs (default: REPRO_STORE env if set, else disabled)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        default=defaults["no_incremental"],
        help="disable push/pop solver-context reuse (one-shot solver per query)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        default=defaults["fail_fast"],
        help="stop discharging at the first refuted obligation",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        default=defaults["progress"],
        help="stream discharge events (unit started/finished, obligation "
        "discharged/refuted) as they happen",
    )
    parser.add_argument(
        "--solver-stats",
        action="store_true",
        default=defaults["solver_stats"],
        help="print query/cache-hit/solve-call counters after the verdict",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        default=defaults["profile"],
        help="collect and print the inner-loop solver profile (pivots, "
        "propagations, conflicts, restarts, interned-node hits, ...)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=defaults["faults"],
        help="install a deterministic fault-injection plan (testing only): "
        "comma-separated SITE@KEY[:ARG] directives, e.g. "
        "'worker-kill@2,store-busy@1'; equivalent to REPRO_FAULTS "
        "(see docs/faults.md)",
    )
    parser.add_argument(
        "--witness",
        action="store_true",
        default=defaults["witness"],
        help="emit proof certificates for valid obligations (persisted with "
        "--store; warm store hits are re-validated by the trusted checker)",
    )


def main(argv=None) -> int:
    from repro import __version__
    from repro.serve.protocol import PROTOCOL_VERSION

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__} (serve protocol {PROTOCOL_VERSION})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="type check a ShadowDP file")
    p_check.add_argument("file")
    p_check.set_defaults(func=cmd_check)

    p_ir = sub.add_parser("ir", help="dump the checked body's basic-block CFG")
    p_ir.add_argument("file")
    p_ir.set_defaults(func=cmd_ir)

    p_tr = sub.add_parser("transform", help="print the transformed program")
    p_tr.add_argument("file")
    p_tr.set_defaults(func=cmd_transform)

    p_ver = sub.add_parser("verify", help="verify the transformed program")
    p_ver.add_argument("file")
    _add_verification_flags(p_ver)
    p_ver.set_defaults(func=cmd_verify)

    p_obl = sub.add_parser(
        "obligations",
        help="list proof obligations with ids and provenance, without solving",
    )
    p_obl.add_argument("file")
    p_obl.add_argument("--json", action="store_true", help="machine-readable output")
    _add_verification_flags(p_obl)
    p_obl.set_defaults(func=cmd_obligations)

    p_pipe = sub.add_parser(
        "pipeline", help="run the staged pipeline with per-stage accounting"
    )
    p_pipe.add_argument("files", nargs="+", metavar="FILE")
    p_pipe.add_argument(
        "--stage",
        choices=STAGES,
        default="verify",
        help="run the pipeline through this stage (inclusive)",
    )
    p_pipe.add_argument("--json", action="store_true", help="machine-readable output")
    _add_verification_flags(p_pipe)
    p_pipe.set_defaults(func=cmd_pipeline)

    p_run = sub.add_parser("run", help="execute with real noise")
    p_run.add_argument("file")
    p_run.add_argument("--input", action="append", metavar="NAME=VALUE")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=cmd_run)

    p_t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_t1.set_defaults(func=cmd_table1)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain the persistent obligation store"
    )
    p_cache.add_argument(
        "cache_action",
        choices=("stats", "gc", "clear", "path"),
        metavar="ACTION",
        help="stats (entry counts + traffic), gc (drop stale entries), "
        "clear (drop everything), path (print the resolved store path)",
    )
    p_cache.add_argument(
        "--store",
        metavar="PATH",
        help="store path (default: REPRO_STORE env, else the user cache dir)",
    )
    p_cache.add_argument(
        "--max-age-days",
        type=float,
        metavar="DAYS",
        help="gc: drop entries not used within DAYS",
    )
    p_cache.add_argument(
        "--max-entries",
        type=int,
        metavar="N",
        help="gc: keep only the N most recently used entries",
    )
    p_cache.add_argument("--json", action="store_true", help="machine-readable output")
    p_cache.set_defaults(func=cmd_cache)

    p_wit = sub.add_parser(
        "witness", help="emit, inspect and re-validate proof certificates"
    )
    wit_sub = p_wit.add_subparsers(dest="witness_action", required=True)
    p_wshow = wit_sub.add_parser(
        "show",
        help="discharge FILE with witnesses on and print per-obligation "
        "certificate summaries",
    )
    p_wshow.add_argument("file")
    p_wshow.add_argument(
        "--oid",
        metavar="OID",
        help="print this obligation's full canonical certificate JSON instead",
    )
    _add_verification_flags(p_wshow)
    p_wshow.set_defaults(func=cmd_witness)
    p_wcheck = wit_sub.add_parser(
        "check",
        help="validate a serialized certificate (JSON file) with the trusted "
        "checker; exit 0 iff it checks",
    )
    p_wcheck.add_argument("file")
    p_wcheck.set_defaults(func=cmd_witness)
    p_wsweep = wit_sub.add_parser(
        "sweep",
        help="re-validate every stored certificate across the registry with "
        "zero solver calls; exit 0 iff all valid obligations check",
    )
    p_wsweep.add_argument(
        "--store",
        metavar="PATH",
        help="store path (default: REPRO_STORE env, else the user cache dir)",
    )
    p_wsweep.add_argument(
        "--spec",
        action="append",
        metavar="NAME",
        help="restrict the sweep to these registry algorithms (repeatable)",
    )
    p_wsweep.add_argument(
        "--populate",
        action="store_true",
        help="run the witnessed verification first so the store is warm",
    )
    p_wsweep.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_wsweep.set_defaults(func=cmd_witness)

    p_srv = sub.add_parser(
        "serve", help="run the long-lived verification service (warm caches)"
    )
    p_srv.add_argument("--socket", metavar="PATH", help="unix socket to listen on")
    p_srv.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p_srv.add_argument(
        "--port", type=int, metavar="N", help="TCP port to listen on (0 = ephemeral)"
    )
    p_srv.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        metavar="N",
        help="verify requests processed at once (further requests queue)",
    )
    p_srv.add_argument(
        "--request-timeout",
        type=float,
        metavar="SECONDS",
        help="default per-request wall-clock budget (cooperative cancellation)",
    )
    p_srv.add_argument(
        "--warm",
        action="store_true",
        help="preload the registry sweep before accepting connections",
    )
    p_srv.add_argument(
        "--store",
        metavar="PATH",
        help="persistent obligation store shared by all requests "
        "(default: REPRO_STORE env if set, else disabled)",
    )
    p_srv.add_argument("--quiet", action="store_true", help="suppress serve logging")
    p_srv.add_argument(
        "--faults",
        metavar="SPEC",
        help="install a deterministic fault-injection plan (testing only): "
        "comma-separated SITE@KEY[:ARG] directives; equivalent to "
        "REPRO_FAULTS (see docs/faults.md)",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_cl = sub.add_parser("client", help="talk to a running verification server")
    p_cl.add_argument(
        "action",
        choices=(
            "status",
            "health",
            "verify",
            "sweep",
            "witness",
            "ping",
            "shutdown",
        ),
    )
    p_cl.add_argument("--socket", metavar="PATH", help="server unix socket")
    p_cl.add_argument("--host", default="127.0.0.1", help="server TCP host")
    p_cl.add_argument("--port", type=int, metavar="N", help="server TCP port")
    p_cl.add_argument("--file", metavar="FILE", help="verify: a ShadowDP source file")
    p_cl.add_argument(
        "--spec",
        action="append",
        metavar="NAME",
        help="registry algorithm name (verify: one; sweep: repeatable filter)",
    )
    p_cl.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="per-request server timeout"
    )
    p_cl.add_argument("--mode", choices=("unroll", "invariant"))
    p_cl.add_argument("--bind", action="append", metavar="NAME=VALUE")
    p_cl.add_argument("--assume", action="append", metavar="EXPR")
    p_cl.add_argument("--unroll", type=int, metavar="N")
    p_cl.add_argument("--jobs", type=int, metavar="N")
    p_cl.add_argument("--backend", choices=("serial", "threaded", "process", "oneshot"))
    p_cl.add_argument("--fail-fast", action="store_true")
    p_cl.add_argument(
        "--witness",
        action="store_true",
        help="verify: emit proof certificates server-side",
    )
    p_cl.add_argument(
        "--oid", metavar="OID", help="witness: the obligation id to look up"
    )
    p_cl.add_argument(
        "--full",
        action="store_true",
        help="witness: also print the canonical certificate JSON",
    )
    p_cl.add_argument(
        "--progress", action="store_true", help="print streamed discharge events"
    )
    p_cl.add_argument("--json", action="store_true", help="machine-readable output")
    p_cl.set_defaults(func=cmd_client)

    args = parser.parse_args(argv)
    if getattr(args, "faults", None):
        from repro import faults
        from repro.faults import FaultPlanError

        try:
            faults.install(args.faults)
        except FaultPlanError as err:
            print(f"error: --faults: {err}", file=sys.stderr)
            return 2
    try:
        return args.func(args)
    except (ShadowDPError, ParseError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
