"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check FILE``
    Type check an annotated ShadowDP source file.
``transform FILE``
    Type check and print the transformed target program.
``verify FILE [--mode unroll|invariant] [--bind name=value ...]``
    Run the full pipeline and report the verification outcome.
``run FILE [--input name=value ...] [--seed N]``
    Execute the source program with real Laplace noise.
``table1``
    Regenerate the paper's Table 1 (see also benchmarks/).
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from repro.core.checker import check_function
from repro.core.errors import ShadowDPError
from repro.lang.parser import parse_expr, parse_function
from repro.lang.pretty import pretty_command
from repro.target.transform import to_target
from repro.verify.verifier import VerificationConfig, verify_target


def _load(path: str):
    with open(path) as handle:
        return parse_function(handle.read())


def _parse_bindings(pairs):
    bindings = {}
    for pair in pairs or ():
        name, _, value = pair.partition("=")
        bindings[name] = Fraction(value)
    return bindings


def cmd_check(args) -> int:
    function = _load(args.file)
    checked = check_function(function)
    mode = "aligned-only (LightDP fragment)" if checked.aligned_only else "shadow execution"
    print(f"{function.name}: type checks [{mode}; {checked.solver_queries} solver queries]")
    return 0


def cmd_transform(args) -> int:
    function = _load(args.file)
    target = to_target(check_function(function))
    print(pretty_command(target.body))
    return 0


def cmd_verify(args) -> int:
    function = _load(args.file)
    target = to_target(check_function(function))
    config = VerificationConfig(
        mode=args.mode,
        bindings=_parse_bindings(args.bind),
        assumptions=tuple(parse_expr(a) for a in (args.assume or ())),
        unroll_limit=args.unroll,
    )
    outcome = verify_target(target, config)
    print(outcome.describe())
    for failure in outcome.failures:
        print("  " + failure.describe())
    return 0 if outcome.verified else 1


def cmd_run(args) -> int:
    from repro.semantics.interpreter import RandomNoise, run_function

    function = _load(args.file)
    inputs = {}
    for pair in args.input or ():
        name, _, value = pair.partition("=")
        if "," in value:
            inputs[name] = tuple(float(v) for v in value.split(","))
        else:
            inputs[name] = float(value)
    result, interp = run_function(function, inputs, noise=RandomNoise(seed=args.seed))
    print(f"result: {result}")
    print(f"samples drawn: {len(interp.samples)}")
    return 0


def cmd_table1(args) -> int:
    from benchmarks.table1 import generate_table1, render_table1  # type: ignore

    rows = generate_table1()
    print(render_table1(rows))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="type check a ShadowDP file")
    p_check.add_argument("file")
    p_check.set_defaults(func=cmd_check)

    p_tr = sub.add_parser("transform", help="print the transformed program")
    p_tr.add_argument("file")
    p_tr.set_defaults(func=cmd_transform)

    p_ver = sub.add_parser("verify", help="verify the transformed program")
    p_ver.add_argument("file")
    p_ver.add_argument("--mode", choices=("unroll", "invariant"), default="unroll")
    p_ver.add_argument("--bind", action="append", metavar="NAME=VALUE")
    p_ver.add_argument("--assume", action="append", metavar="EXPR")
    p_ver.add_argument("--unroll", type=int, default=32)
    p_ver.set_defaults(func=cmd_verify)

    p_run = sub.add_parser("run", help="execute with real noise")
    p_run.add_argument("file")
    p_run.add_argument("--input", action="append", metavar="NAME=VALUE")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.set_defaults(func=cmd_run)

    p_t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_t1.set_defaults(func=cmd_table1)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ShadowDPError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
