"""Known-buggy Sparse Vector variants (after Lyu, Su & Li, VLDB 2017).

The paper's Sections 1 and 8 point at bug finding on transformed
programs as the natural companion application: a buggy program can still
*type check* under some annotation, but the transformed program's
assertions are then refutable, and the refutation model is a concrete
counterexample (adjacent inputs + noise) witnessing the privacy
violation.  These specs exercise exactly that path; ``expect_verified``
is False for all of them.

* ``bad_svt_no_threshold_noise`` — iSVT 3 of Lyu et al.: the threshold
  is not noised; the branch-alignment assertion fails.
* ``bad_svt_leaks_value`` — iSVT 4: outputs the noisy query value used
  for the comparison; with the alignment that protects the value, the
  comparison is no longer aligned.
* ``bad_svt_no_budget`` — iSVT 1: never counts answers, so the privacy
  cost grows without bound; the final budget assertion fails.
"""

from __future__ import annotations

import random
from typing import List

from repro.algorithms.spec import AlgorithmSpec
from repro.algorithms.sparse_vector import adjacent_offsets, example_inputs
from repro.semantics.distributions import laplace_sample

NO_THRESHOLD_NOISE_SOURCE = """
function BadSVT1(eps: num<0,0>, size: num<0,0>, T: num<0,0>, N: num<0,0>, q: list num<*,*>)
returns out: list bool
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= T;
{
    count := 0; i := 0;
    while (count <= N - 1 && i < size)
    {
        eta2 := Lap(4 * N / eps), aligned, Omega ? 2 : 0;
        if (Omega) {
            out := true :: out;
            count := count + 1;
        } else {
            out := false :: out;
        }
        i := i + 1;
    }
    return out;
}
"""

LEAKS_VALUE_SOURCE = """
function BadSVT2(eps: num<0,0>, size: num<0,0>, T: num<0,0>, N: num<0,0>, q: list num<*,*>)
returns out: list num<0,->
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= Tt;
{
    eta1 := Lap(2 / eps), aligned, 1;
    Tt := T + eta1;
    count := 0; i := 0;
    while (count <= N - 1 && i < size)
    {
        eta2 := Lap(4 * N / eps), aligned, -q^o[i];
        if (Omega) {
            out := q[i] + eta2 :: out;
            count := count + 1;
        } else {
            out := 0 :: out;
        }
        i := i + 1;
    }
    return out;
}
"""

NO_BUDGET_SOURCE = """
function BadSVT3(eps: num<0,0>, size: num<0,0>, T: num<0,0>, N: num<0,0>, q: list num<*,*>)
returns out: list bool
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= Tt;
{
    eta1 := Lap(2 / eps), aligned, 1;
    Tt := T + eta1;
    i := 0;
    while (i < size)
    {
        eta2 := Lap(4 * N / eps), aligned, Omega ? 2 : 0;
        if (Omega) {
            out := true :: out;
        } else {
            out := false :: out;
        }
        i := i + 1;
    }
    return out;
}
"""


def bad_svt1_reference(rng: random.Random, eps, size, T, N, q):
    out: List[bool] = []
    count = 0
    for i in range(int(size)):
        if count > N - 1:
            break
        eta2 = laplace_sample(rng, 4.0 * N / eps)
        if q[i] + eta2 >= T:
            out.insert(0, True)
            count += 1
        else:
            out.insert(0, False)
    return tuple(out)


def bad_svt2_reference(rng: random.Random, eps, size, T, N, q):
    noisy_t = T + laplace_sample(rng, 2.0 / eps)
    out: List[float] = []
    count = 0
    for i in range(int(size)):
        if count > N - 1:
            break
        eta2 = laplace_sample(rng, 4.0 * N / eps)
        if q[i] + eta2 >= noisy_t:
            out.insert(0, q[i] + eta2)
            count += 1
        else:
            out.insert(0, 0.0)
    return tuple(out)


def bad_svt3_reference(rng: random.Random, eps, size, T, N, q):
    noisy_t = T + laplace_sample(rng, 2.0 / eps)
    out: List[bool] = []
    for i in range(int(size)):
        eta2 = laplace_sample(rng, 4.0 * N / eps)
        out.insert(0, q[i] + eta2 >= noisy_t)
    return tuple(out)


_COMMON = dict(
    assumptions=("eps > 0", "N >= 1", "size >= 0"),
    fixed_bindings={"size": 3, "N": 1},
    expect_verified=False,
    example_inputs=example_inputs,
    adjacent_offsets=adjacent_offsets,
)

BAD_SVT1_SPEC = AlgorithmSpec(
    name="bad_svt_no_threshold_noise",
    paper_ref="Lyu et al. iSVT 3; paper Sections 1/8 (bug finding)",
    source=NO_THRESHOLD_NOISE_SOURCE,
    reference=bad_svt1_reference,
    **_COMMON,
)

BAD_SVT2_SPEC = AlgorithmSpec(
    name="bad_svt_leaks_value",
    paper_ref="Lyu et al. iSVT 4; paper Sections 1/8 (bug finding)",
    source=LEAKS_VALUE_SOURCE,
    reference=bad_svt2_reference,
    **_COMMON,
)

BAD_SVT3_SPEC = AlgorithmSpec(
    name="bad_svt_no_budget",
    paper_ref="Lyu et al. iSVT 1; paper Sections 1/8 (bug finding)",
    source=NO_BUDGET_SOURCE,
    reference=bad_svt3_reference,
    **_COMMON,
)
