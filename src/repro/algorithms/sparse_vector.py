"""The Sparse Vector family (paper Section 6.2, Figures 6 and 10).

Three members:

* **SVT** — the classic technique: answer "above/below threshold" for up
  to N above-threshold queries (Fig. 6).
* **NumSVT** — Numerical Sparse Vector: release a freshly-noised query
  value for above-threshold queries (Fig. 10, Appendix C.1).
* **GapSVT** — the paper's *novel* variant (Section 6.2.2): release the
  gap ``q[i] + η₂ − T̃`` itself, re-using the comparison noise, at the
  same privacy level.

Loop guards are written ``count <= N - 1`` rather than ``count < N``:
over the integers these coincide, and the former is what makes the
budget invariant inductive in linear *real* arithmetic (the paper's C
encoding gets integer semantics from CPAChecker for free).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.algorithms.spec import AlgorithmSpec
from repro.semantics.distributions import laplace_sample

SVT_SOURCE = """
function SVT(eps: num<0,0>, size: num<0,0>, T: num<0,0>, N: num<0,0>, q: list num<*,*>)
returns out: list bool
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= Tt;
{
    eta1 := Lap(2 / eps), aligned, 1;
    Tt := T + eta1;
    count := 0; i := 0;
    while (count <= N - 1 && i < size)
    invariant v_eps <= eps / 2 + count * (eps / (2 * N));
    invariant count >= 0;
    invariant count <= N;
    {
        eta2 := Lap(4 * N / eps), aligned, Omega ? 2 : 0;
        if (Omega) {
            out := true :: out;
            count := count + 1;
        } else {
            out := false :: out;
        }
        i := i + 1;
    }
    return out;
}
"""

NUM_SVT_SOURCE = """
function NumSVT(eps: num<0,0>, size: num<0,0>, T: num<0,0>, N: num<0,0>, q: list num<*,*>)
returns out: list num<0,->
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= Tt;
{
    eta1 := Lap(3 / eps), aligned, 1;
    Tt := T + eta1;
    count := 0; i := 0;
    while (count <= N - 1 && i < size)
    invariant v_eps <= eps / 3 + count * (2 * eps / (3 * N));
    invariant count >= 0;
    invariant count <= N;
    {
        eta2 := Lap(6 * N / eps), aligned, Omega ? 2 : 0;
        if (Omega) {
            eta3 := Lap(3 * N / eps), aligned, -q^o[i];
            out := q[i] + eta3 :: out;
            count := count + 1;
        } else {
            out := 0 :: out;
        }
        i := i + 1;
    }
    return out;
}
"""

GAP_SVT_SOURCE = """
function GapSVT(eps: num<0,0>, size: num<0,0>, T: num<0,0>, N: num<0,0>, q: list num<*,*>)
returns out: list num<0,->
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= Tt;
{
    eta1 := Lap(2 / eps), aligned, 1;
    Tt := T + eta1;
    count := 0; i := 0;
    while (count <= N - 1 && i < size)
    invariant v_eps <= eps / 2 + count * (eps / (2 * N));
    invariant count >= 0;
    invariant count <= N;
    {
        eta2 := Lap(4 * N / eps), aligned, Omega ? (1 - q^o[i]) : 0;
        if (Omega) {
            out := q[i] + eta2 - Tt :: out;
            count := count + 1;
        } else {
            out := 0 :: out;
        }
        i := i + 1;
    }
    return out;
}
"""


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------


def svt_reference(rng: random.Random, eps: float, size: float, T: float, N: float, q):
    noisy_t = T + laplace_sample(rng, 2.0 / eps)
    out: List[bool] = []
    count = 0
    for i in range(int(size)):
        if count > N - 1:
            break
        eta2 = laplace_sample(rng, 4.0 * N / eps)
        if q[i] + eta2 >= noisy_t:
            out.insert(0, True)
            count += 1
        else:
            out.insert(0, False)
    return tuple(out)


def num_svt_reference(rng: random.Random, eps: float, size: float, T: float, N: float, q):
    noisy_t = T + laplace_sample(rng, 3.0 / eps)
    out: List[float] = []
    count = 0
    for i in range(int(size)):
        if count > N - 1:
            break
        eta2 = laplace_sample(rng, 6.0 * N / eps)
        if q[i] + eta2 >= noisy_t:
            out.insert(0, q[i] + laplace_sample(rng, 3.0 * N / eps))
            count += 1
        else:
            out.insert(0, 0.0)
    return tuple(out)


def gap_svt_reference(rng: random.Random, eps: float, size: float, T: float, N: float, q):
    noisy_t = T + laplace_sample(rng, 2.0 / eps)
    out: List[float] = []
    count = 0
    for i in range(int(size)):
        if count > N - 1:
            break
        eta2 = laplace_sample(rng, 4.0 * N / eps)
        if q[i] + eta2 >= noisy_t:
            out.insert(0, q[i] + eta2 - noisy_t)
            count += 1
        else:
            out.insert(0, 0.0)
    return tuple(out)


def example_inputs() -> Dict:
    q = [0.5, 2.0, -1.0, 3.0, 1.5, 0.0]
    return {
        "eps": 1.0,
        "size": float(len(q)),
        "T": 1.0,
        "N": 2.0,
        "q": tuple(q),
    }


def adjacent_offsets(inputs: Dict, rng: random.Random) -> Dict:
    n = len(inputs["q"])
    offsets = tuple(rng.uniform(-1.0, 1.0) for _ in range(n))
    return {"q^o": offsets, "q^s": offsets}


_COMMON = dict(
    assumptions=("eps > 0", "N >= 1", "size >= 0"),
    fixed_bindings={"size": 4, "N": 2},
    example_inputs=example_inputs,
    adjacent_offsets=adjacent_offsets,
)

SVT_SPEC = AlgorithmSpec(
    name="svt",
    paper_ref="Figure 6; Table 1 rows 'Sparse Vector Technique'",
    source=SVT_SOURCE,
    reference=svt_reference,
    notes="Outputting false is free once the threshold is noised.",
    **_COMMON,
)

NUM_SVT_SPEC = AlgorithmSpec(
    name="num_svt",
    paper_ref="Figure 10; Table 1 rows 'Numerical Sparse Vector Technique'",
    source=NUM_SVT_SOURCE,
    reference=num_svt_reference,
    notes=(
        "Samples inside a branch: legal because every selector is "
        "aligned, so the checker stays in LightDP (aligned-only) mode."
    ),
    **_COMMON,
)

GAP_SVT_SPEC = AlgorithmSpec(
    name="gap_svt",
    paper_ref="Section 6.2.2 (novel variant); Table 1 row 'Gap Sparse Vector Technique'",
    source=GAP_SVT_SOURCE,
    reference=gap_svt_reference,
    notes=(
        "Releases q[i]+eta2-Tt re-using the comparison noise; the "
        "alignment Omega ? (1 - q^o[i]) : 0 makes the released gap "
        "identical in both runs at no extra budget."
    ),
    **_COMMON,
)
