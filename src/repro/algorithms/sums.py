"""Partial Sum, Prefix Sum and Smart Sum (paper Appendix C.2–C.3).

These use the *one-query-differs* adjacency: at most one query answer
changes, by at most 1.  The paper writes it as a quantified implication
(``q̂°[i] ≠ 0 ⇒ ∀j>i. q̂°[j] = 0``); we encode it equivalently with two
ghost parameters ``d`` (the differing index, −1 when none) and ``delta``
(the difference): ``q̂°[k] = (k = d ? delta : 0)``.  The extra conjuncts
``k <= d-1 || k >= d`` and ``d >= 0 || d <= -1`` are integrality facts
(trivially true for integer indices) that linear *real* arithmetic needs
spelled out; CPAChecker gets them for free from C's int semantics.

Smart Sum is written with an explicit block counter ``blk`` instead of
``(i+1) mod M`` — the semantics of Fig. 12 without a modulo operator.
It certifies a ``2·eps`` budget (``costbound 2 * eps``), matching the
paper's Appendix C.3.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.algorithms.spec import AlgorithmSpec
from repro.semantics.distributions import laplace_sample

_ADJACENCY = (
    "-1 <= delta && delta <= 1 && (d >= 0 || delta == 0) && (d >= 0 || d <= -1)"
    " && (forall k :: q^o[k] == (k == d ? delta : 0) && q^s[k] == q^o[k]"
    " && (k <= d - 1 || k >= d))"
)

PARTIAL_SUM_SOURCE = f"""
function PartialSum(eps: num<0,0>, size: num<0,0>, d: num<0,0>, delta: num<0,0>, q: list num<*,*>)
returns out: num<0,->
precondition {_ADJACENCY};
{{
    sum := 0; i := 0;
    while (i < size)
    invariant sum^o == (i > d ? delta : 0);
    {{
        sum := sum + q[i];
        i := i + 1;
    }}
    eta := Lap(1 / eps), aligned, -sum^o;
    out := sum + eta;
    return out;
}}
"""

PREFIX_SUM_SOURCE = f"""
function PrefixSum(eps: num<0,0>, size: num<0,0>, d: num<0,0>, delta: num<0,0>, q: list num<*,*>)
returns out: list num<0,->
precondition {_ADJACENCY};
{{
    next := 0; i := 0;
    while (i < size)
    invariant i <= d && v_eps == 0 || i > d && v_eps <= abs(delta) * eps;
    {{
        eta := Lap(1 / eps), aligned, -q^o[i];
        next := next + q[i] + eta;
        out := next :: out;
        i := i + 1;
    }}
    return out;
}}
"""

SMART_SUM_SOURCE = f"""
function SmartSum(eps: num<0,0>, size: num<0,0>, M: num<0,0>, T: num<0,0>, d: num<0,0>, delta: num<0,0>, q: list num<*,*>)
returns out: list num<0,->
precondition {_ADJACENCY};
costbound 2 * eps;
{{
    next := 0; i := 0; sum := 0; blk := 0;
    while (i <= T && i < size)
    invariant blk >= 0;
    invariant i <= d && v_eps == 0 && sum^o == 0
        || i > d && d >= i - blk && v_eps <= abs(delta) * eps && sum^o == delta
        || i > d && d <= i - blk - 1 && v_eps <= 2 * abs(delta) * eps && sum^o == 0;
    {{
        blk := blk + 1;
        if (blk == M) {{
            eta1 := Lap(1 / eps), aligned, -sum^o - q^o[i];
            next := sum + q[i] + eta1;
            sum := 0;
            out := next :: out;
            blk := 0;
        }} else {{
            eta2 := Lap(1 / eps), aligned, -q^o[i];
            next := next + q[i] + eta2;
            sum := sum + q[i];
            out := next :: out;
        }}
        i := i + 1;
    }}
    return out;
}}
"""


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------


def partial_sum_reference(rng: random.Random, eps: float, size: float, d: float, delta: float, q):
    total = sum(q[i] for i in range(int(size)))
    return total + laplace_sample(rng, 1.0 / eps)


def prefix_sum_reference(rng: random.Random, eps: float, size: float, d: float, delta: float, q):
    out: List[float] = []
    running = 0.0
    for i in range(int(size)):
        running = running + q[i] + laplace_sample(rng, 1.0 / eps)
        out.insert(0, running)
    return tuple(out)


def smart_sum_reference(
    rng: random.Random, eps: float, size: float, M: float, T: float, d: float, delta: float, q
):
    out: List[float] = []
    next_value = 0.0
    block_sum = 0.0
    blk = 0
    i = 0
    while i <= T and i < int(size):
        blk += 1
        if blk == int(M):
            next_value = block_sum + q[i] + laplace_sample(rng, 1.0 / eps)
            block_sum = 0.0
            out.insert(0, next_value)
            blk = 0
        else:
            next_value = next_value + q[i] + laplace_sample(rng, 1.0 / eps)
            block_sum += q[i]
            out.insert(0, next_value)
        i += 1
    return tuple(out)


# ---------------------------------------------------------------------------
# Inputs and adjacency witnesses
# ---------------------------------------------------------------------------


def _one_diff_offsets(inputs: Dict, rng: random.Random) -> Dict:
    n = len(inputs["q"])
    offsets = [0.0] * n
    d = int(inputs["d"])
    if 0 <= d < n:
        offsets[d] = float(inputs["delta"])
    offsets = tuple(offsets)
    return {"q^o": offsets, "q^s": offsets}


def _sum_inputs(extra: Dict = None) -> Dict:
    q = [1.0, -0.5, 2.0, 0.0, 1.5]
    inputs = {
        "eps": 1.0,
        "size": float(len(q)),
        "d": 2.0,
        "delta": 1.0,
        "q": tuple(q),
    }
    inputs.update(extra or {})
    return inputs


PARTIAL_SUM_SPEC = AlgorithmSpec(
    name="partial_sum",
    paper_ref="Figure 11 (Appendix C.2); Table 1 row 'Partial Sum'",
    source=PARTIAL_SUM_SOURCE,
    assumptions=("eps > 0", "size >= 0"),
    fixed_bindings={"size": 4},
    reference=partial_sum_reference,
    example_inputs=lambda: _sum_inputs(),
    adjacent_offsets=_one_diff_offsets,
)

PREFIX_SUM_SPEC = AlgorithmSpec(
    name="prefix_sum",
    paper_ref="Appendix C.3 (variant of Smart Sum from [2]); Table 1 row 'Prefix Sum'",
    source=PREFIX_SUM_SOURCE,
    assumptions=("eps > 0", "size >= 0"),
    fixed_bindings={"size": 4},
    reference=prefix_sum_reference,
    example_inputs=lambda: _sum_inputs(),
    adjacent_offsets=_one_diff_offsets,
)

SMART_SUM_SPEC = AlgorithmSpec(
    name="smart_sum",
    paper_ref="Figure 12 (Appendix C.3); Table 1 row 'Smart Sum'",
    source=SMART_SUM_SOURCE,
    assumptions=("eps > 0", "size >= 0", "M >= 1", "T >= 0"),
    fixed_bindings={"size": 6, "M": 2, "T": 5},
    epsilon_multiplier=2,
    reference=smart_sum_reference,
    example_inputs=lambda: _sum_inputs({"M": 2.0, "T": 4.0}),
    adjacent_offsets=_one_diff_offsets,
    notes="Satisfies 2*eps-differential privacy (paper Appendix C.3).",
)
