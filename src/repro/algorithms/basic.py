"""Two further Table-1-style case studies: the scalar Laplace mechanism
and Above Threshold (one-shot Sparse Vector).

Both are aligned-only (LightDP-fragment) algorithms exercising the
CFG-based IR end to end through the registry sweep:

* **LaplaceMech** — the textbook mechanism on one sensitivity-1 query:
  a loop-free program whose CFG is a single block, pinning the trivial
  end of the lowering passes.  The scalar parameter ``x`` carries the
  star distance with its adjacency (``-1 ≤ x̂° ≤ 1``) stated as a
  *non-quantified* precondition — the other registry programs all
  quantify over query lists, so this covers the scalar-Ψ path.
* **AboveThreshold** — SVT specialised to the first above-threshold
  query: loop with a branch whose arm rebinds the loop's exit flag,
  exercising branch-join store merging inside a loop sub-CFG.  Its
  budget invariant is the disjunctive (case-split) form
  ``found = 0 ∧ v_eps ≤ ε/2 ∨ found = 1 ∧ v_eps ≤ ε``, which stays in
  linear arithmetic where SVT's counter-product form needs monomial
  lemmas.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.algorithms.spec import AlgorithmSpec
from repro.semantics.distributions import laplace_sample

LAPLACE_MECH_SOURCE = """
function LaplaceMech(eps: num<0,0>, x: num<*,*>)
returns out: num<0,*>
precondition -1 <= x^o && x^o <= 1 && x^s == x^o;
{
    eta := Lap(1 / eps), aligned, -x^o;
    out := x + eta;
    return out;
}
"""

ABOVE_THRESHOLD_SOURCE = """
function AboveThreshold(eps: num<0,0>, size: num<0,0>, T: num<0,0>, q: list num<*,*>)
returns out: num<0,*>
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta2 >= Tt;
{
    eta1 := Lap(2 / eps), aligned, 1;
    Tt := T + eta1;
    out := size; found := 0; i := 0;
    while (found == 0 && i < size)
    invariant found == 0 && v_eps <= eps / 2 || found == 1 && v_eps <= eps;
    {
        eta2 := Lap(4 / eps), aligned, Omega ? 2 : 0;
        if (Omega) {
            out := i;
            found := 1;
        }
        i := i + 1;
    }
    return out;
}
"""


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------


def laplace_mech_reference(rng: random.Random, eps: float, x: float) -> float:
    return x + laplace_sample(rng, 1.0 / eps)


def above_threshold_reference(
    rng: random.Random, eps: float, size: float, T: float, q
) -> float:
    noisy_t = T + laplace_sample(rng, 2.0 / eps)
    for i in range(int(size)):
        if q[i] + laplace_sample(rng, 4.0 / eps) >= noisy_t:
            return float(i)
    return float(size)


# ---------------------------------------------------------------------------
# Inputs and adjacency witnesses
# ---------------------------------------------------------------------------


def _laplace_inputs() -> Dict:
    return {"eps": 1.0, "x": 0.7}


def _laplace_offsets(inputs: Dict, rng: random.Random) -> Dict:
    offset = rng.uniform(-1.0, 1.0)
    return {"x^o": offset, "x^s": offset}


def _threshold_inputs() -> Dict:
    q = [0.5, 2.0, -1.0, 3.0, 1.5, 0.0]
    return {"eps": 1.0, "size": float(len(q)), "T": 1.0, "q": tuple(q)}


def _threshold_offsets(inputs: Dict, rng: random.Random) -> Dict:
    n = len(inputs["q"])
    offsets = tuple(rng.uniform(-1.0, 1.0) for _ in range(n))
    return {"q^o": offsets, "q^s": offsets}


LAPLACE_MECH_SPEC = AlgorithmSpec(
    name="laplace_mech",
    paper_ref="Section 2.1 (the Laplace mechanism, sensitivity-1 query)",
    source=LAPLACE_MECH_SOURCE,
    assumptions=("eps > 0",),
    reference=laplace_mech_reference,
    example_inputs=_laplace_inputs,
    adjacent_offsets=_laplace_offsets,
    notes="Loop-free: its CFG is a single basic block.",
)

ABOVE_THRESHOLD_SPEC = AlgorithmSpec(
    name="above_threshold",
    paper_ref="Section 6.2 (Sparse Vector with N = 1, first hit only)",
    source=ABOVE_THRESHOLD_SOURCE,
    assumptions=("eps > 0", "size >= 0"),
    fixed_bindings={"size": 4},
    reference=above_threshold_reference,
    example_inputs=_threshold_inputs,
    adjacent_offsets=_threshold_offsets,
    notes=(
        "Releases the index of the first above-threshold query; the "
        "disjunctive budget invariant stays linear, so the invariant "
        "regime needs no monomial lemmas."
    ),
)
