"""Registry of all case-study algorithms."""

from __future__ import annotations

from typing import Dict, List

from repro.algorithms.basic import ABOVE_THRESHOLD_SPEC, LAPLACE_MECH_SPEC
from repro.algorithms.buggy import BAD_SVT1_SPEC, BAD_SVT2_SPEC, BAD_SVT3_SPEC
from repro.algorithms.noisy_max import SPEC as NOISY_MAX_SPEC
from repro.algorithms.sparse_vector import GAP_SVT_SPEC, NUM_SVT_SPEC, SVT_SPEC
from repro.algorithms.spec import AlgorithmSpec
from repro.algorithms.sums import PARTIAL_SUM_SPEC, PREFIX_SUM_SPEC, SMART_SUM_SPEC

_SPECS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        NOISY_MAX_SPEC,
        SVT_SPEC,
        NUM_SVT_SPEC,
        GAP_SVT_SPEC,
        PARTIAL_SUM_SPEC,
        PREFIX_SUM_SPEC,
        SMART_SUM_SPEC,
        LAPLACE_MECH_SPEC,
        ABOVE_THRESHOLD_SPEC,
        BAD_SVT1_SPEC,
        BAD_SVT2_SPEC,
        BAD_SVT3_SPEC,
    )
}

#: The rows of Table 1, in the paper's order.  (N=1) rows reuse the
#: general spec with the binding N=1; the gap variant gets the same
#: single-query row as plain SVT.
TABLE1_ORDER = (
    ("noisy_max", None),
    ("svt", {"N": 1}),
    ("svt", None),
    ("num_svt", {"N": 1}),
    ("num_svt", None),
    ("gap_svt", {"N": 1}),
    ("gap_svt", None),
    ("partial_sum", None),
    ("prefix_sum", None),
    ("smart_sum", None),
)


def get(name: str) -> AlgorithmSpec:
    return _SPECS[name]


def names(include_buggy: bool = True) -> List[str]:
    return [n for n, s in _SPECS.items() if include_buggy or s.expect_verified]


def all_specs(include_buggy: bool = True) -> List[AlgorithmSpec]:
    return [s for s in _SPECS.values() if include_buggy or s.expect_verified]
