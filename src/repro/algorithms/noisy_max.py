"""Report Noisy Max (paper Section 2.3, Figure 1).

Returns the index of the (noisily) largest query answer.  The sampling
annotation is the paper's: switch to the shadow execution and align the
fresh sample by 2 exactly when a new maximum is found.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.algorithms.spec import AlgorithmSpec
from repro.semantics.distributions import laplace_sample

SOURCE = """
function NoisyMax(eps: num<0,0>, size: num<0,0>, q: list num<*,*>)
returns max: num<0,*>
precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
define Omega = q[i] + eta > bq || i == 0;
{
    i := 0; bq := 0; max := 0;
    while (i < size)
    invariant v_eps <= eps;
    invariant i == 0 && bq^o == 0 && bq^s == 0 || i >= 1 && 1 <= bq^o && -1 <= bq^s && bq^s <= 1;
    {
        eta := Lap(2 / eps), Omega ? shadow : aligned, Omega ? 2 : 0;
        if (Omega) {
            max := i;
            bq := q[i] + eta;
        }
        i := i + 1;
    }
    return max;
}
"""


def reference(rng: random.Random, eps: float, size: float, q) -> int:
    """Plain-Python Report Noisy Max."""
    best = 0.0
    best_index = 0
    for i in range(int(size)):
        noisy = q[i] + laplace_sample(rng, 2.0 / eps)
        if noisy > best or i == 0:
            best_index = i
            best = noisy
    return best_index


def example_inputs() -> Dict:
    q = [1.0, 2.0, 2.0, 4.0, 0.5]
    return {"eps": 1.0, "size": float(len(q)), "q": tuple(q)}


def adjacent_offsets(inputs: Dict, rng: random.Random) -> Dict:
    """Every query may move by up to 1 (sensitivity-1 adjacency)."""
    n = len(inputs["q"])
    offsets = tuple(rng.uniform(-1.0, 1.0) for _ in range(n))
    return {"q^o": offsets, "q^s": offsets}


SPEC = AlgorithmSpec(
    name="noisy_max",
    paper_ref="Figure 1; Table 1 row 'Report Noisy Max'",
    source=SOURCE,
    assumptions=("eps > 0", "size >= 0"),
    fixed_bindings={"size": 4},
    uses_shadow=True,
    reference=reference,
    example_inputs=example_inputs,
    adjacent_offsets=adjacent_offsets,
    notes=(
        "The algorithm LightDP cannot verify: the alignment for query i "
        "depends on future samples, which the shadow execution resolves."
    ),
)
