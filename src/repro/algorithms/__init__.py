"""The paper's case-study algorithms (Section 6.2, Appendix C) and the
known-buggy Sparse Vector variants used for bug finding.

Every algorithm is an :class:`~repro.algorithms.spec.AlgorithmSpec`
bundling the annotated ShadowDP source (with the paper's sampling
annotations and, where needed, the loop invariants the paper supplies to
CPAChecker manually), verification configurations for the regimes of
Table 1, a plain-Python reference implementation, and input generators
for the empirical and relational validators.

Use :func:`repro.algorithms.registry.get` /
:func:`repro.algorithms.registry.all_specs` to enumerate them.
"""

from repro.algorithms.spec import AlgorithmSpec
from repro.algorithms.registry import all_specs, get, names, TABLE1_ORDER

__all__ = ["AlgorithmSpec", "all_specs", "get", "names", "TABLE1_ORDER"]
