"""The algorithm-specification container."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.checker import CheckedProgram, check_function
from repro.lang import ast
from repro.lang.parser import parse_expr, parse_function
from repro.target.transform import TargetProgram, to_target


@dataclass
class AlgorithmSpec:
    """Everything the pipeline, benches and tests need about one algorithm.

    Attributes
    ----------
    name / paper_ref:
        Identification; ``paper_ref`` points at the table/figure.
    source:
        Annotated ShadowDP concrete syntax.  Loop invariants for the
        Hoare regime are written inline (``invariant ...;``), mirroring
        the paper's manually-supplied CPAChecker invariants.
    assumptions:
        Parameter facts (as source expressions) assumed by verification,
        e.g. ``eps > 0``; these are facts the paper's C encoding gets
        from types (unsigned ints) or harness code.
    fixed_bindings:
        Concrete parameters for the unroll/BMC regime (the paper's
        "fix ε" column; we additionally fix loop bounds, which CPAChecker
        gets from finite-state exploration).
    expect_verified:
        False for the known-buggy variants: they type check but the
        verifier must refute them.
    reference:
        Plain-Python implementation ``f(rng, **inputs) -> output`` used
        by the empirical estimator and interpreter cross-checks.
    example_inputs:
        A callable producing a representative concrete input dict.
    adjacent_offsets:
        A callable ``(inputs, rng) -> hats`` drawing a random adjacency
        witness (hat arrays) satisfying the precondition.
    """

    name: str
    paper_ref: str
    source: str
    assumptions: Tuple[str, ...] = ()
    fixed_bindings: Dict[str, Fraction] = field(default_factory=dict)
    epsilon_multiplier: int = 1
    expect_verified: bool = True
    uses_shadow: bool = False
    reference: Optional[Callable] = None
    example_inputs: Optional[Callable[[], Dict]] = None
    adjacent_offsets: Optional[Callable[[Dict, random.Random], Dict]] = None
    notes: str = ""

    # -- cached pipeline products -------------------------------------------

    def function(self) -> ast.FunctionDef:
        if not hasattr(self, "_function"):
            self._function = parse_function(self.source)
        return self._function

    def checked(self) -> CheckedProgram:
        if not hasattr(self, "_checked"):
            self._checked = check_function(self.function())
        return self._checked

    def target(self) -> TargetProgram:
        if not hasattr(self, "_target"):
            self._target = to_target(self.checked())
        return self._target

    def assumption_exprs(self) -> Tuple[ast.Expr, ...]:
        return tuple(parse_expr(a) for a in self.assumptions)

    def has_invariants(self) -> bool:
        return any(
            isinstance(c, ast.While) and c.invariants
            for c in ast.command_iter(self.function().body)
        )
