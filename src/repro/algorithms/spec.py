"""The algorithm-specification container."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from repro.core.checker import CheckedProgram
from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.pipeline import Pipeline, PipelineRun, spec_config
from repro.target.transform import TargetProgram
from repro.verify.verifier import VerificationConfig

#: One memoizing pipeline shared by every registry consumer: the specs
#: are module-level singletons, so tests, benches and the CLI all reuse
#: each algorithm's parse/check/lower/optimize artifacts.
_PIPELINE = Pipeline()


def registry_pipeline() -> Pipeline:
    """The shared memoizing pipeline behind the algorithm registry."""
    return _PIPELINE


@dataclass
class AlgorithmSpec:
    """Everything the pipeline, benches and tests need about one algorithm.

    Attributes
    ----------
    name / paper_ref:
        Identification; ``paper_ref`` points at the table/figure.
    source:
        Annotated ShadowDP concrete syntax.  Loop invariants for the
        Hoare regime are written inline (``invariant ...;``), mirroring
        the paper's manually-supplied CPAChecker invariants.
    assumptions:
        Parameter facts (as source expressions) assumed by verification,
        e.g. ``eps > 0``; these are facts the paper's C encoding gets
        from types (unsigned ints) or harness code.
    fixed_bindings:
        Concrete parameters for the unroll/BMC regime (the paper's
        "fix ε" column; we additionally fix loop bounds, which CPAChecker
        gets from finite-state exploration).
    expect_verified:
        False for the known-buggy variants: they type check but the
        verifier must refute them.
    reference:
        Plain-Python implementation ``f(rng, **inputs) -> output`` used
        by the empirical estimator and interpreter cross-checks.
    example_inputs:
        A callable producing a representative concrete input dict.
    adjacent_offsets:
        A callable ``(inputs, rng) -> hats`` drawing a random adjacency
        witness (hat arrays) satisfying the precondition.
    """

    name: str
    paper_ref: str
    source: str
    assumptions: Tuple[str, ...] = ()
    fixed_bindings: Dict[str, Fraction] = field(default_factory=dict)
    epsilon_multiplier: int = 1
    expect_verified: bool = True
    uses_shadow: bool = False
    reference: Optional[Callable] = None
    example_inputs: Optional[Callable[[], Dict]] = None
    adjacent_offsets: Optional[Callable[[Dict, random.Random], Dict]] = None
    notes: str = ""

    # -- staged pipeline products -------------------------------------------
    #
    # Each accessor runs the shared pipeline through the corresponding
    # stage; memoization (keyed on the source hash) makes repeated calls
    # free, replacing the old per-spec attribute caches.

    def function(self) -> ast.FunctionDef:
        return _PIPELINE.run(self.source, stop_after="parse").function

    def checked(self) -> CheckedProgram:
        return _PIPELINE.run(self.source, stop_after="check").checked

    def target(self) -> TargetProgram:
        return _PIPELINE.run(self.source, stop_after="optimize").target

    def pipeline_run(self, config: Optional[VerificationConfig] = None) -> PipelineRun:
        """Full end-to-end run; defaults to this spec's unroll regime."""
        return _PIPELINE.run(self.source, config=config or self.verification_config())

    def verification_config(self, unroll_limit: int = 16) -> VerificationConfig:
        """The spec's Table-1 unroll-regime configuration."""
        return spec_config(self, unroll_limit=unroll_limit)

    def assumption_exprs(self) -> Tuple[ast.Expr, ...]:
        return tuple(parse_expr(a) for a in self.assumptions)

    def has_invariants(self) -> bool:
        return any(
            isinstance(c, ast.While) and c.invariants
            for c in ast.command_iter(self.function().body)
        )
