"""The ``repro serve`` daemon: a long-lived verification service.

One process holds the expensive state every CLI invocation used to
rebuild from scratch — the interned term tables, one memoizing
:class:`~repro.pipeline.Pipeline` (stage memo keyed on source hash ×
config fingerprint) and its single-flight
:class:`~repro.solver.context.QueryCache` — and serves verify requests
over unix-domain and/or TCP sockets using the newline-delimited JSON
protocol in :mod:`repro.serve.protocol`.

Execution model
---------------
The asyncio event loop owns all sockets; each ``verify`` request runs
the pipeline on a worker thread (``max_concurrent`` bounds the pool), so
the loop stays responsive for ``status`` introspection and new
connections while solves are in flight.  Typed
:class:`~repro.verify.discharge.DischargeEvent`\\ s are forwarded from
the worker thread onto the request's connection incrementally
(``call_soon_threadsafe`` → per-request queue → socket), so clients
render progress while the solver is still working.

Determinism
-----------
Concurrent requests multiplex through two single-flight layers: the
stage memo (concurrent *identical* requests share one pipeline
execution; latecomers block and receive the memoized result as a
``cached`` hit, exactly as a serial replay would) and the query cache
(concurrent identical solver queries are solved once).  Verdicts,
obligation ids and per-request query counts are therefore identical to
serial one-shot runs at any client concurrency, and aggregate solve and
cache-hit totals across a request mix are schedule-invariant (the
solve count equals the number of distinct normalized queries).  The
per-request *split* of hits vs solves between two distinct concurrent
programs that happen to share a query is the one schedule-dependent
quantity; ``tests/serve`` pins exactly this contract.

Lifecycle
---------
``SIGTERM``/``SIGINT`` (or a client ``shutdown`` request) starts a clean
drain: listeners close, every in-flight request's cancel event is set —
its discharge stops at the next unit boundary with an ``early-exit``
event streamed to the attached client and an ``error`` (code
``cancelled``) terminal message — then the process exits.  Per-request
timeouts use the same cooperative cancellation seam.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro import faults as faults_mod
from repro.algorithms import registry
from repro.core.errors import ShadowDPError
from repro.lang.parser import ParseError
from repro.pipeline import Pipeline, PipelineRun, spec_config
from repro.serve import protocol
from repro.verify.discharge import DischargeCancelled
from repro.verify.store import resolve_store
from repro.verify.verifier import VerificationConfig

#: Sentinel queued after the last event of a verify run.
_DONE = object()


class VerifyServer:
    """The warm verification service (see module docstring).

    Parameters
    ----------
    socket_path / host / port:
        Listen endpoints; at least one of ``socket_path`` and ``port``
        is required (``port=0`` binds an ephemeral port, reported by
        :attr:`tcp_port` after :meth:`start`).
    max_concurrent:
        Worker threads — the number of verify requests solving at once;
        further requests queue.
    request_timeout:
        Default per-request wall-clock budget in seconds (requests may
        send their own ``timeout``); ``None`` means unbounded.
    warm:
        Run the full registry sweep (every non-buggy algorithm in its
        Table-1 regime) through the pipeline before accepting
        connections, so the first client hits a hot cache.
    store:
        A persistent :class:`~repro.verify.store.ObligationStore` (or a
        path to one) shared by every request that does not carry its
        own: verdicts survive server restarts, and a freshly-started
        server answers warm obligations from disk without solving.
    drain_grace:
        Seconds to wait for in-flight requests to unwind during
        shutdown before their connections are force-closed.
    max_queue:
        Admission control: the most verify requests admitted at once
        (solving plus queued for a worker).  Further requests are
        rejected immediately with a typed ``overloaded`` error carrying
        a ``retry_after`` hint instead of queuing unboundedly.  Default
        ``4 × max_concurrent``.
    degraded_window:
        How long (seconds) a recovery incident — a worker-pool restart
        survived by a request — keeps ``health`` reporting ``degraded``.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        *,
        max_concurrent: int = 4,
        request_timeout: Optional[float] = None,
        warm: bool = False,
        warm_specs: Optional[List[str]] = None,
        store: Optional[object] = None,
        drain_grace: float = 30.0,
        quiet: bool = False,
        max_queue: Optional[int] = None,
        degraded_window: float = 60.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("serve needs a unix socket path and/or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.max_concurrent = max(1, max_concurrent)
        self.request_timeout = request_timeout
        #: Warm on startup: ``warm_specs`` names a subset; plain ``warm``
        #: sweeps the whole non-buggy registry.
        self.warm = warm or bool(warm_specs)
        self.warm_specs = list(warm_specs or ())
        self.drain_grace = drain_grace
        self.quiet = quiet

        #: The warm state: one memoizing pipeline and its query cache.
        self.pipeline = Pipeline()
        #: Shared on-disk verdict cache (None = per-request stores only).
        self.store = resolve_store(store)
        self.max_queue = (
            max(1, max_queue) if max_queue is not None else 4 * self.max_concurrent
        )
        self.degraded_window = degraded_window
        self.counters: Dict[str, int] = {
            "received": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
            "overloaded": 0,
        }
        #: Verify requests admitted and not yet finished (event-loop
        #: thread only), compared against ``max_queue`` at admission.
        self._inflight = 0
        #: Recent recovery incidents as ``(monotonic time, cause)``;
        #: pruned to ``degraded_window`` by :meth:`health_message`.
        self._incidents: List[Tuple[float, str]] = []
        self.warmed: List[str] = []
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrent, thread_name_prefix="repro-serve"
        )
        self._active: "set[threading.Event]" = set()
        self._handlers: "set[asyncio.Task]" = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._draining = False
        self._started = time.monotonic()
        self.tcp_port: Optional[int] = None

    # -- logging ---------------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-serve] {message}", file=sys.stderr, flush=True)

    # -- lifecycle -------------------------------------------------------------

    def _with_store(self, config: VerificationConfig) -> VerificationConfig:
        """Attach the server's shared store to a config that has none."""
        if self.store is None or config.store is not None:
            return config
        return dataclasses.replace(config, store=self.store)

    def warm_registry(self, names: Optional[List[str]] = None) -> List[str]:
        """Preload the stage memo and query cache with a registry sweep."""
        specs = (
            [registry.get(name) for name in names]
            if names
            else registry.all_specs(include_buggy=False)
        )
        for spec in specs:
            self.pipeline.run(spec.source, config=self._with_store(spec_config(spec)))
            self.warmed.append(spec.name)
        return self.warmed

    async def start(self) -> None:
        """Warm (when asked) and bind the listeners.

        The socket appears only once the warm sweep is done, so "the
        socket exists" means "the server is ready" to supervisors.
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._started = time.monotonic()
        if self.warm:
            self._log("warming: registry sweep ...")
            start = time.perf_counter()
            await self._loop.run_in_executor(
                self._pool, self.warm_registry, self.warm_specs or None
            )
            self._log(
                f"warm: {len(self.warmed)} algorithms in "
                f"{time.perf_counter() - start:.1f}s"
            )
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle, path=self.socket_path, limit=protocol.MAX_LINE_BYTES
                )
            )
            self._log(f"listening on unix:{self.socket_path}")
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle, self.host, self.port, limit=protocol.MAX_LINE_BYTES
            )
            self._servers.append(server)
            self.tcp_port = server.sockets[0].getsockname()[1]
            self._log(f"listening on tcp:{self.host}:{self.tcp_port}")

    async def run(self, install_signal_handlers: bool = False) -> None:
        """Serve until shut down, then drain cleanly."""
        await self.start()
        if install_signal_handlers:
            import signal

            for sig in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(
                    sig, self.request_shutdown, signal.Signals(sig).name
                )
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self, reason: str = "requested") -> None:
        """Begin a clean drain; safe to call from any thread or a signal."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._begin_shutdown, reason)

    def _begin_shutdown(self, reason: str) -> None:
        if self._draining:
            return
        self._draining = True
        self._log(f"draining ({reason}): {len(self._active)} request(s) in flight")
        for event in list(self._active):
            event.set()
        self._shutdown.set()

    async def close(self) -> None:
        """Stop listening, let in-flight requests unwind, release the pool."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        deadline = self._loop.time() + self.drain_grace
        while self._active and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Cancelled requests have sent their terminal error; give their
        # handlers one tick to flush, then drop idle connections.
        await asyncio.sleep(0.05)
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._pool.shutdown(wait=True, cancel_futures=True)
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._log("closed")

    # -- connection handling ---------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        plan = faults_mod.active()
        if plan is not None:
            # Chaos hook: a ``serve-drop@K`` directive severs the first
            # connection that writes its Kth frame, exercising client
            # reconnect/retry end to end.
            frames = getattr(writer, "_fault_frames", 0) + 1
            writer._fault_frames = frames
            if plan.drop_connection(frames):
                writer.transport.abort()
                raise ConnectionResetError("injected connection drop")
        writer.write(protocol.encode_line(message))
        await writer.drain()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._send(writer, protocol.server_hello())
            line = await reader.readline()
            if not line:
                return
            try:
                hello = protocol.decode_line(line)
                protocol.check_client_hello(hello)
            except protocol.ProtocolError as err:
                self.counters["rejected"] += 1
                await self._send(writer, protocol.error(err.code, str(err)))
                return
            await self._send(writer, protocol.ready())
            # Keep serving the connection while draining: verify requests
            # are rejected in _handle_verify, but health probes must still
            # be able to observe the "draining" status.  Teardown is
            # handled by _stop cancelling handler tasks.
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Frame over the stream limit: unrecoverable framing.
                    await self._send(
                        writer, protocol.error("bad-request", "oversized frame")
                    )
                    break
                if not line:
                    break
                try:
                    message = protocol.decode_line(line)
                except protocol.ProtocolError as err:
                    await self._send(writer, protocol.error(err.code, str(err)))
                    continue
                if not await self._dispatch(message, writer):
                    break
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, message: Dict[str, Any], writer) -> bool:
        """Handle one request; False ends the connection."""
        kind = message["type"]
        rid = message.get("id")
        if kind == "verify":
            await self._handle_verify(message, writer)
            return True
        if kind == "witness":
            await self._handle_witness(message, writer)
            return True
        if kind == "status":
            await self._send(writer, self.status_message(rid))
            return True
        if kind == "ping":
            await self._send(writer, {"type": "pong", "id": rid})
            return True
        if kind == "health":
            await self._send(writer, self.health_message(rid))
            return True
        if kind == "shutdown":
            await self._send(writer, {"type": "shutdown-ack", "id": rid})
            self.request_shutdown("client shutdown request")
            return False
        await self._send(
            writer, protocol.error("bad-request", f"unknown request type {kind!r}", rid)
        )
        return True

    # -- verify requests -------------------------------------------------------

    def _resolve_request(
        self, message: Dict[str, Any]
    ) -> Tuple[str, Optional[VerificationConfig]]:
        """The source text and base config a verify request denotes."""
        if "source" in message and "spec" in message:
            raise protocol.ProtocolError("give 'source' or 'spec', not both")
        if "spec" in message:
            name = message["spec"]
            try:
                spec = registry.get(name)
            except KeyError:
                raise protocol.ProtocolError(
                    f"unknown registry spec {name!r}", code="unknown-spec"
                )
            return spec.source, spec_config(spec)
        source = message.get("source")
        if not isinstance(source, str) or not source.strip():
            raise protocol.ProtocolError(
                "verify needs 'source' text or a registry 'spec' name"
            )
        return source, None

    def _run_request(
        self, source: str, config: VerificationConfig, sink, cancel_event: threading.Event
    ) -> PipelineRun:
        """The worker-thread body of one verify request."""
        if cancel_event.is_set():
            # Cancelled (timeout/drain) while still queued for a worker.
            raise DischargeCancelled("cancelled before start")
        return self.pipeline.run(source, config=config, on_event=sink)

    async def _handle_verify(self, message: Dict[str, Any], writer) -> None:
        rid = message.get("id")
        self.counters["received"] += 1
        if self._draining:
            self.counters["cancelled"] += 1
            await self._send(
                writer, protocol.error("shutting-down", "server is draining", rid)
            )
            return
        if self._inflight >= self.max_queue:
            # Admission control: reject now with a typed error and a
            # backoff hint instead of queuing unboundedly.
            self.counters["overloaded"] += 1
            retry_after = min(5.0, 0.1 * max(1, self._inflight))
            await self._send(
                writer,
                protocol.error(
                    "overloaded",
                    f"server at capacity ({self._inflight} requests in flight,"
                    f" max_queue={self.max_queue})",
                    rid,
                    retry_after=retry_after,
                ),
            )
            return
        cancel_event = threading.Event()
        try:
            source, base = self._resolve_request(message)
            config = self._with_store(
                protocol.config_from_wire(
                    message.get("config"), base=base, cancel_event=cancel_event
                )
            )
            timeout = message.get("timeout", self.request_timeout)
            if timeout is not None:
                timeout = float(timeout)
        except (protocol.ProtocolError, ValueError, TypeError) as err:
            self.counters["failed"] += 1
            code = getattr(err, "code", "bad-request")
            await self._send(writer, protocol.error(code, str(err), rid))
            return

        stream_events = bool(message.get("stream", True))
        queue: "asyncio.Queue" = asyncio.Queue()
        loop = self._loop

        def sink(event) -> None:
            # Worker thread → event loop; drop events if the loop died.
            try:
                loop.call_soon_threadsafe(
                    queue.put_nowait, protocol.event_to_wire(event, rid)
                )
            except RuntimeError:
                pass

        self._active.add(cancel_event)
        self._inflight += 1
        started = loop.time()
        timed_out = False
        try:
            future = loop.run_in_executor(
                self._pool,
                self._run_request,
                source,
                config,
                sink if stream_events else None,
                cancel_event,
            )
            future.add_done_callback(lambda _f: queue.put_nowait(_DONE))
            try:
                while True:
                    remaining = None
                    if timeout is not None and not timed_out:
                        remaining = timeout - (loop.time() - started)
                        if remaining <= 0:
                            timed_out = True
                            cancel_event.set()
                            continue
                    try:
                        item = await asyncio.wait_for(queue.get(), remaining)
                    except asyncio.TimeoutError:
                        timed_out = True
                        cancel_event.set()
                        continue
                    if item is _DONE:
                        break
                    await self._send(writer, item)
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # Client went away mid-stream: stop the worker too, and
                # consume its (expected) cancellation so asyncio does not
                # log an unretrieved-exception traceback.
                cancel_event.set()
                future.add_done_callback(lambda f: f.exception())
                raise

            try:
                run = future.result()
            except DischargeCancelled:
                self.counters["cancelled"] += 1
                if timed_out:
                    await self._send(
                        writer,
                        protocol.error(
                            "timeout", f"request exceeded {timeout:g}s", rid
                        ),
                    )
                else:
                    await self._send(
                        writer,
                        protocol.error("cancelled", "server is draining", rid),
                    )
            except (ShadowDPError, ParseError) as err:
                self.counters["failed"] += 1
                await self._send(writer, protocol.error("verify-error", str(err), rid))
            except Exception as err:
                self.counters["failed"] += 1
                self._log(f"internal error: {err!r}")
                await self._send(
                    writer,
                    protocol.error("internal", f"{type(err).__name__}: {err}", rid),
                )
            else:
                self.counters["completed"] += 1
                cached = run.stages["verify"].cached
                recovery = run.outcome.recovery
                if recovery and not cached:
                    restarts = recovery.get("pool_restarts", 0)
                    recovered = len(recovery.get("recovered_units", ()))
                    self._note_incident(
                        f"worker-pool: {restarts} restart(s),"
                        f" {recovered} unit(s) re-solved serially"
                    )
                await self._send(writer, protocol.result_to_wire(run, cached, rid))
        finally:
            self._inflight -= 1
            self._active.discard(cancel_event)

    # -- witness requests ------------------------------------------------------

    def _witness_lookup(
        self, source: str, config: VerificationConfig, oid: str, full: bool
    ) -> Dict[str, Any]:
        """Worker-thread body of one witness request: fetch the stored
        certificate for ``(oid, fingerprint)`` and re-validate it with
        the trusted kernel.  No solving happens here — the target is
        prepared only to derive the premise fingerprint."""
        from repro.verify.verifier import prepare_generator
        from repro.witness import Certificate, WitnessError, validate

        run = self.pipeline.run(source, config=config, stop_after="optimize")
        _, checker = prepare_generator(run.target, config)
        out: Dict[str, Any] = {
            "oid": oid,
            "fingerprint": checker.store_fingerprint,
            "found": False,
        }
        store = checker.store
        if store is None:
            out["error"] = "no obligation store configured"
            return out
        verdict = store.lookup(oid, checker.store_fingerprint)
        if verdict is None:
            return out
        out["found"] = True
        out["valid"] = verdict.valid
        if verdict.witness is None:
            out["witnessed"] = False
            return out
        out["witnessed"] = True
        try:
            certificate = Certificate.from_json(verdict.witness)
            out["checked"] = validate(certificate)
            out["validated"] = True
            out["summary"] = certificate.summary()
        except WitnessError as err:
            out["validated"] = False
            out["error"] = str(err)
            return out
        if full:
            out["certificate"] = verdict.witness
        return out

    async def _handle_witness(self, message: Dict[str, Any], writer) -> None:
        rid = message.get("id")
        try:
            oid = message.get("oid")
            if not isinstance(oid, str) or not oid:
                raise protocol.ProtocolError("witness needs an 'oid'")
            source, base = self._resolve_request(message)
            config = self._with_store(
                protocol.config_from_wire(message.get("config"), base=base)
            )
        except (protocol.ProtocolError, ValueError, TypeError) as err:
            code = getattr(err, "code", "bad-request")
            await self._send(writer, protocol.error(code, str(err), rid))
            return
        try:
            out = await self._loop.run_in_executor(
                self._pool,
                self._witness_lookup,
                source,
                config,
                oid,
                bool(message.get("full", False)),
            )
        except (ShadowDPError, ParseError) as err:
            await self._send(writer, protocol.error("verify-error", str(err), rid))
            return
        except Exception as err:
            self._log(f"internal error: {err!r}")
            await self._send(
                writer,
                protocol.error("internal", f"{type(err).__name__}: {err}", rid),
            )
            return
        reply: Dict[str, Any] = {"type": "witness", **out}
        if rid is not None:
            reply["id"] = rid
        await self._send(writer, reply)

    # -- introspection ---------------------------------------------------------

    def _note_incident(self, cause: str) -> None:
        """Record a survived fault so ``health`` can report ``degraded``."""
        self._incidents.append((time.monotonic(), cause))

    def health_message(self, rid: Optional[str] = None) -> Dict[str, Any]:
        """The ``health`` response: liveness beyond "the socket accepts".

        ``ok`` — fully healthy.  ``degraded`` — still serving correct
        results, but something worth paging on happened: the obligation
        store fell back to memory-only writes, or a request survived a
        worker-pool restart within the last ``degraded_window`` seconds.
        ``draining`` — shutting down; new verify requests are rejected.
        Every degradation comes with its cause.
        """
        now = time.monotonic()
        self._incidents = [
            (when, cause)
            for when, cause in self._incidents
            if now - when <= self.degraded_window
        ]
        causes = [cause for _, cause in self._incidents]
        if self.store is not None and self.store.degraded:
            causes.insert(
                0, "obligation-store degraded: verdicts kept in memory only"
            )
        if self._draining:
            status = "draining"
        elif causes:
            status = "degraded"
        else:
            status = "ok"
        return protocol.health(
            status,
            causes,
            rid,
            uptime_seconds=round(now - self._started, 3),
            inflight=self._inflight,
            max_queue=self.max_queue,
        )

    def status_message(self, rid: Optional[str] = None) -> Dict[str, Any]:
        """The ``status`` response: identity, load, and warm-cache stats."""
        out: Dict[str, Any] = {
            "type": "status",
            "server": {
                "version": __version__,
                "protocol": protocol.PROTOCOL_VERSION,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "draining": self._draining,
                "max_concurrent": self.max_concurrent,
                "request_timeout": self.request_timeout,
                "warmed": list(self.warmed),
            },
            "requests": {**self.counters, "active": len(self._active)},
            "query_cache": self.pipeline.query_cache.stats(),
            "stage_memo": self.pipeline.memo_stats(),
            "obligation_store": self.store.stats() if self.store is not None else None,
            "registry": registry.names(include_buggy=True),
        }
        if rid is not None:
            out["id"] = rid
        return out


# ---------------------------------------------------------------------------
# Embedding helpers
# ---------------------------------------------------------------------------


class ServerThread:
    """Run a :class:`VerifyServer` on a background thread (tests, benches).

    ``start()`` returns once the server is warm and listening (or raises
    the startup error); ``stop()`` drains and joins.
    """

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("quiet", True)
        self.server = VerifyServer(**kwargs)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise self._error
        return self

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        try:
            await self.server.start()
        except BaseException as err:  # startup failed: surface in start()
            self._error = err
            self._ready.set()
            return
        self._ready.set()
        await self.server._shutdown.wait()
        await self.server.close()

    def stop(self, timeout: float = 60.0) -> None:
        self.server.request_shutdown("embedder stop")
        if self._thread is not None:
            self._thread.join(timeout=timeout)


def main(argv=None) -> int:
    """``python -m repro.serve.server`` — thin wrapper over ``repro serve``."""
    from repro.cli import main as cli_main

    return cli_main(["serve"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main())
