"""A synchronous client for the ``repro serve`` daemon.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over a unix-domain or TCP socket: it
performs the version handshake on connect, then offers one method per
request type.  ``verify`` streams the server's typed discharge events
into an optional callback before returning the terminal result.

Each client is one connection and is strictly sequential (the protocol
is request/response per connection); concurrency means several clients.
The class is intentionally free of asyncio so it can be used from
tests, benchmarks and user scripts without an event loop.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.serve import protocol

#: Callback receiving each streamed ``event`` message (a wire dict).
EventCallback = Optional[Callable[[Dict[str, Any]], None]]


class ServeError(RuntimeError):
    """A terminal ``error`` response (or a transport/handshake failure).

    ``code`` is the server's error code (``protocol-mismatch``,
    ``timeout``, ``unknown-spec``, ...) or ``"connection"`` for
    transport-level failures.  ``retry_after`` carries the server's
    advisory backoff floor when it sent one (``overloaded``).
    """

    def __init__(
        self,
        message: str,
        code: str = "connection",
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class ServeClient:
    """One connection to a running verification server.

    Parameters mirror the server's listen endpoints: pass
    ``socket_path`` for a unix socket or ``host``/``port`` for TCP.
    Usable as a context manager::

        with ServeClient(socket_path="/tmp/repro.sock") as client:
            result = client.verify(spec="svt")

    Transient failures are retried: a lost connection is re-established
    and the request re-sent, and an ``overloaded`` rejection is retried
    after the server's ``retry_after`` floor — both under capped
    exponential backoff with jitter (``retries`` attempts beyond the
    first).  A retried ``verify`` restarts its event stream from the
    beginning, so ``on_event`` callbacks may observe events again.
    Verdicts are unaffected: the server's stage memo and query cache
    make the re-run answer-identical.
    """

    #: Error codes worth retrying: the request never produced a verdict.
    RETRYABLE_CODES = ("connection", "overloaded")

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        connect_timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("ServeClient needs a unix socket path or a TCP port")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._rng = random.Random()
        self._next_id = 0
        #: The server's ``hello``: its version and protocol revision.
        self.server_info = self._connect()

    def _connect(self) -> Dict[str, Any]:
        try:
            if self._socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(self._connect_timeout)
                self._sock.connect(self._socket_path)
            else:
                self._sock = socket.create_connection(
                    (self._host, self._port), timeout=self._connect_timeout
                )
        except OSError as err:
            raise ServeError(f"cannot connect to server: {err}")
        # Verification requests may legitimately run long; blocking reads
        # from here on are bounded by the server's own timeouts.
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("rb")
        self.server_info = self._handshake()
        return self.server_info

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    # -- transport -------------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            self._sock.sendall(protocol.encode_line(message))
        except OSError as err:
            raise ServeError(f"connection lost while sending: {err}")

    def _recv(self) -> Dict[str, Any]:
        try:
            line = self._reader.readline(protocol.MAX_LINE_BYTES + 1)
        except OSError as err:
            raise ServeError(f"connection lost while reading: {err}")
        if not line:
            raise ServeError("server closed the connection")
        try:
            return protocol.decode_line(line)
        except protocol.ProtocolError as err:
            raise ServeError(f"bad frame from server: {err}", code=err.code)

    def _handshake(self) -> Dict[str, Any]:
        hello = self._recv()
        if hello.get("type") != "hello":
            raise ServeError(
                f"expected a server hello, got {hello.get('type')!r}",
                code="protocol-mismatch",
            )
        if hello.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ServeError(
                f"server speaks protocol {hello.get('protocol')!r}, "
                f"client speaks {protocol.PROTOCOL_VERSION}",
                code="protocol-mismatch",
            )
        self._send(protocol.client_hello())
        answer = self._recv()
        if answer.get("type") == "error":
            raise ServeError(answer.get("message", "rejected"), code=answer.get("code"))
        if answer.get("type") != "ready":
            raise ServeError(
                f"expected ready, got {answer.get('type')!r}", code="protocol-mismatch"
            )
        return hello

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests --------------------------------------------------------------

    def _request(
        self,
        message: Dict[str, Any],
        on_event: EventCallback = None,
        retryable: bool = True,
    ) -> Dict[str, Any]:
        """Send one request (with retry/backoff); return the terminal message."""
        self._next_id += 1
        rid = f"r{self._next_id}"
        message = {**message, "id": rid}
        attempt = 0
        while True:
            try:
                return self._attempt(message, on_event)
            except ServeError as err:
                if (
                    not retryable
                    or err.code not in self.RETRYABLE_CODES
                    or attempt >= self.retries
                ):
                    raise
                # Capped exponential backoff with full jitter; an
                # overloaded server's retry_after is the floor.
                delay = min(self.backoff_cap, self.backoff * (2 ** attempt))
                if err.retry_after is not None:
                    delay = max(delay, err.retry_after)
                time.sleep(delay + self._rng.uniform(0, delay))
                attempt += 1
                if err.code == "connection":
                    try:
                        self._reconnect()
                    except ServeError:
                        # Connect failures surface on the next attempt's
                        # send (or exhaust the retry budget there).
                        continue

    def _attempt(
        self, message: Dict[str, Any], on_event: EventCallback = None
    ) -> Dict[str, Any]:
        """One send + stream events + terminal message round trip."""
        self._send(message)
        while True:
            answer = self._recv()
            if answer.get("type") == "event":
                if on_event is not None:
                    on_event(answer)
                continue
            if answer.get("type") == "error":
                raise ServeError(
                    answer.get("message", "request failed"),
                    code=answer.get("code", "internal"),
                    retry_after=answer.get("retry_after"),
                )
            return answer

    def verify(
        self,
        source: Optional[str] = None,
        spec: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        stream: bool = True,
        on_event: EventCallback = None,
    ) -> Dict[str, Any]:
        """Verify a program; returns the terminal ``result`` message.

        Exactly one of ``source`` (ShadowDP concrete syntax) and ``spec``
        (a registry algorithm name, verified in its Table-1 regime) is
        required.  ``config`` is a wire-shape config dict
        (:data:`repro.serve.protocol.CONFIG_KEYS`); ``timeout`` caps this
        request's wall clock server-side; ``on_event`` receives each
        streamed discharge event.
        """
        message: Dict[str, Any] = {"type": "verify", "stream": bool(stream)}
        if source is not None:
            message["source"] = source
        if spec is not None:
            message["spec"] = spec
        if config is not None:
            message["config"] = config
        if timeout is not None:
            message["timeout"] = timeout
        return self._request(message, on_event=on_event)

    def sweep(
        self,
        specs: Optional[Iterable[str]] = None,
        on_event: EventCallback = None,
        **kwargs: Any,
    ) -> List[Dict[str, Any]]:
        """Verify a sequence of registry specs (default: the server's
        full non-buggy registry, in its reported order)."""
        if specs is None:
            status = self.status()
            specs = [
                name
                for name in status["registry"]
                if not name.startswith("bad_")
            ]
        return [
            self.verify(spec=name, on_event=on_event, **kwargs) for name in specs
        ]

    def witness(
        self,
        oid: str,
        source: Optional[str] = None,
        spec: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        full: bool = False,
    ) -> Dict[str, Any]:
        """Fetch and re-validate the stored proof certificate for one
        obligation; returns the terminal ``witness`` message.

        ``source``/``spec`` identify the program exactly as in
        :meth:`verify` (they determine the premise fingerprint the
        obligation store is keyed on); ``full`` additionally returns the
        canonical certificate JSON itself.
        """
        message: Dict[str, Any] = {"type": "witness", "oid": oid, "full": bool(full)}
        if source is not None:
            message["source"] = source
        if spec is not None:
            message["spec"] = spec
        if config is not None:
            message["config"] = config
        return self._request(message)

    def status(self) -> Dict[str, Any]:
        """The server's introspection snapshot (cache stats, counters)."""
        return self._request({"type": "status"})

    def ping(self) -> Dict[str, Any]:
        return self._request({"type": "ping"})

    def health(self) -> Dict[str, Any]:
        """The server's health verdict: ``ok``/``degraded``/``draining``
        plus the causes behind any degradation."""
        return self._request({"type": "health"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit; returns the ack.

        Never retried: a connection that dies here usually means the
        shutdown took, and a blind re-send could kill a fresh server.
        """
        return self._request({"type": "shutdown"}, retryable=False)
