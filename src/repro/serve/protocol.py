"""The ``repro serve`` wire protocol: newline-delimited JSON.

Framing
-------
Every message is one JSON object, UTF-8 encoded, terminated by ``\\n``,
at most :data:`MAX_LINE_BYTES` long.  The connection is strictly
request/response *per connection*: the client sends one request line and
reads response lines until it sees the request's terminal message
(``result``, ``status``, ``witness``, ``pong``, ``shutdown-ack`` or
``error``);
``verify`` additionally streams any number of ``event`` lines before its
terminal message.  Concurrency comes from opening several connections —
the server multiplexes them over one warm cache.

Handshake
---------
On connect the server speaks first::

    {"type": "hello", "server": "repro-serve", "version": "1.2.0", "protocol": 1}

The client answers with its own ``hello`` carrying the protocol version
it speaks; the server replies ``{"type": "ready", ...}`` or rejects the
connection with an ``error`` (code ``protocol-mismatch``) and closes.
:data:`PROTOCOL_VERSION` is bumped on any incompatible wire change.

Message catalogue
-----------------
See ``docs/protocol.md`` for the full field-by-field specification with
examples; this module is its executable counterpart — every message the
server or client emits is built by a constructor here, and the
conversion of pipeline results and typed
:class:`~repro.verify.discharge.DischargeEvent`\\ s to wire dicts lives
here so both endpoints and the tests agree byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import json
from fractions import Fraction
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.lang.parser import parse_expr
from repro.verify.discharge import DischargeEvent, ObligationFailure, event_kind
from repro.verify.verifier import VerificationConfig, VerificationOutcome

#: Bumped on every incompatible wire change; both endpoints send it in
#: the handshake and the server rejects clients speaking anything else.
PROTOCOL_VERSION = 1

#: Upper bound on one framed message (sources, event bursts and status
#: dumps are all far below this; the cap exists so a corrupt peer cannot
#: make either endpoint buffer unboundedly).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Verify-request configuration keys the server accepts.
CONFIG_KEYS = (
    "mode",
    "bindings",
    "assumptions",
    "unroll_limit",
    "jobs",
    "backend",
    "fail_fast",
    "witness",
)

#: Error codes the server emits (``error`` messages' ``code`` field).
ERROR_CODES = (
    "protocol-mismatch",
    "bad-request",
    "unknown-spec",
    "verify-error",
    "timeout",
    "cancelled",
    "shutting-down",
    "overloaded",
    "internal",
)


class ProtocolError(ValueError):
    """A malformed or protocol-violating message."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_line(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    line = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(line) + 1 > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(line)} bytes exceeds MAX_LINE_BYTES")
    return line + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; every message must be a JSON object with a ``type``."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds MAX_LINE_BYTES")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"undecodable frame: {err}")
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError("every message must be a JSON object with a string 'type'")
    return message


# ---------------------------------------------------------------------------
# Handshake and control messages
# ---------------------------------------------------------------------------


def server_hello() -> Dict[str, Any]:
    return {
        "type": "hello",
        "server": "repro-serve",
        "version": __version__,
        "protocol": PROTOCOL_VERSION,
    }


def client_hello() -> Dict[str, Any]:
    return {"type": "hello", "version": __version__, "protocol": PROTOCOL_VERSION}


def ready() -> Dict[str, Any]:
    return {"type": "ready", "protocol": PROTOCOL_VERSION}


def error(
    code: str,
    message: str,
    rid: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    out: Dict[str, Any] = {"type": "error", "code": code, "message": message}
    if rid is not None:
        out["id"] = rid
    if retry_after is not None:
        # Advisory backoff floor (seconds); sent with ``overloaded`` so
        # clients do not hammer a server that is already at capacity.
        out["retry_after"] = round(float(retry_after), 3)
    return out


def health(
    status: str, causes: List[str], rid: Optional[str] = None, **extra: Any
) -> Dict[str, Any]:
    """The ``health`` response: ``ok``/``degraded``/``draining`` + causes."""
    assert status in ("ok", "degraded", "draining"), status
    out: Dict[str, Any] = {"type": "health", "status": status, "causes": list(causes)}
    out.update(extra)
    if rid is not None:
        out["id"] = rid
    return out


def check_client_hello(message: Dict[str, Any]) -> None:
    """Validate the client side of the handshake (server calls this).

    Raises :class:`ProtocolError` with code ``protocol-mismatch`` when
    the peer speaks a different protocol revision — mixed-version fleets
    must fail loudly at connect time, not corrupt a stream mid-request.
    """
    if message.get("type") != "hello":
        raise ProtocolError(
            f"expected a hello, got {message.get('type')!r}", code="protocol-mismatch"
        )
    spoken = message.get("protocol")
    if spoken != PROTOCOL_VERSION:
        raise ProtocolError(
            f"client speaks protocol {spoken!r}, server speaks {PROTOCOL_VERSION}",
            code="protocol-mismatch",
        )


# ---------------------------------------------------------------------------
# Verify requests: wire → VerificationConfig
# ---------------------------------------------------------------------------


def _parse_binding(name: str, value: Any) -> Fraction:
    try:
        return Fraction(str(value))
    except (ValueError, ZeroDivisionError):
        raise ProtocolError(f"binding {name!r} is not a rational: {value!r}")


def config_from_wire(
    data: Optional[Dict[str, Any]],
    base: Optional[VerificationConfig] = None,
    cancel_event=None,
) -> VerificationConfig:
    """The :class:`VerificationConfig` a request's ``config`` dict denotes.

    ``base`` supplies defaults (a registry spec's Table-1 regime for
    ``spec`` requests); explicit keys override it, with ``bindings``
    merged name-by-name on top of the base bindings.  Rationals travel
    as strings (``"1/2"``) or integers.
    """
    data = data or {}
    unknown = sorted(set(data) - set(CONFIG_KEYS))
    if unknown:
        raise ProtocolError(f"unknown config keys: {', '.join(unknown)}")
    base = base or VerificationConfig()

    mode = data.get("mode", base.mode)
    if mode not in ("unroll", "invariant"):
        raise ProtocolError(f"mode must be 'unroll' or 'invariant', got {mode!r}")
    bindings = dict(base.bindings)
    raw_bindings = data.get("bindings", {})
    if not isinstance(raw_bindings, dict):
        raise ProtocolError("bindings must be an object of name -> rational")
    for name, value in raw_bindings.items():
        bindings[name] = _parse_binding(name, value)
    if "assumptions" in data:
        try:
            assumptions = tuple(parse_expr(text) for text in data["assumptions"])
        except Exception as err:  # ParseError or wrong shapes
            raise ProtocolError(f"unparsable assumption: {err}")
    else:
        assumptions = tuple(base.assumptions)
    backend = data.get("backend", base.backend)
    if backend is not None and backend not in (
        "serial",
        "threaded",
        "process",
        "oneshot",
    ):
        raise ProtocolError(f"unknown backend {backend!r}")
    try:
        unroll_limit = int(data.get("unroll_limit", base.unroll_limit))
        jobs = int(data.get("jobs", base.jobs))
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"unroll_limit/jobs must be integers: {err}")
    return VerificationConfig(
        mode=mode,
        bindings=bindings,
        assumptions=assumptions,
        unroll_limit=unroll_limit,
        jobs=jobs,
        backend=backend,
        fail_fast=bool(data.get("fail_fast", base.fail_fast)),
        cancel_event=cancel_event,
        witness=bool(data.get("witness", base.witness)),
    )


def bindings_to_wire(bindings: Dict[str, Fraction]) -> Dict[str, str]:
    """Rationals as exact strings (``Fraction(3, 2)`` → ``"3/2"``)."""
    return {name: str(value) for name, value in sorted(bindings.items())}


# ---------------------------------------------------------------------------
# Results and events: pipeline → wire
# ---------------------------------------------------------------------------


def event_to_wire(event: DischargeEvent, rid: Optional[str] = None) -> Dict[str, Any]:
    """One typed discharge event as an ``event`` message.

    The ``kind`` field carries the stable kebab-case event name
    ("unit-started", "obligation-discharged", "early-exit", ...); the
    event dataclass's own fields ride alongside it unchanged.
    """
    out: Dict[str, Any] = {"type": "event", "kind": event_kind(event)}
    out.update(dataclasses.asdict(event))
    if rid is not None:
        out["id"] = rid
    return out


def failure_to_wire(failure: ObligationFailure) -> Dict[str, Any]:
    return {
        "oid": failure.obligation.oid,
        "tag": failure.obligation.tag,
        "description": failure.describe(),
    }


def outcome_to_wire(outcome: VerificationOutcome) -> Dict[str, Any]:
    return {
        "verified": outcome.verified,
        "obligations_total": outcome.obligations_total,
        "oids": list(outcome.oids or ()),
        "failures": [failure_to_wire(f) for f in outcome.failures],
        "early_exit": outcome.early_exit,
        "seconds": round(outcome.seconds, 6),
        "counters": outcome.solver_stats(),
    }


def result_to_wire(run, cached: bool, rid: Optional[str] = None) -> Dict[str, Any]:
    """The terminal ``result`` message for one verify request.

    ``run`` is a :class:`~repro.pipeline.PipelineRun`; ``cached`` says
    whether the ``verify`` stage came out of the server's warm stage
    memo (in which case no events were streamed and the embedded
    counters are those of the original producing run).
    """
    out: Dict[str, Any] = {
        "type": "result",
        "name": run.name,
        "source_sha256": run.source_hash,
        "cached": cached,
        "outcome": outcome_to_wire(run.outcome),
        "stages": [run.stages[s].to_dict() for s in run.stages],
    }
    if rid is not None:
        out["id"] = rid
    return out
