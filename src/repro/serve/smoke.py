"""The ``repro serve`` end-to-end smoke check (the CI ``serve-smoke`` job).

Run as ``PYTHONPATH=src python -m repro.serve.smoke``.  It exercises the
full deployment shape — a real daemon subprocess, real sockets — and
asserts the service-mode contract:

1. start ``repro serve`` on a unix socket and wait for the socket to
   appear (the server binds only once it is ready);
2. compute a serial in-process reference for three registry rows;
3. first client sweep (cold): verdicts, obligation ids and query
   counters must equal the serial reference exactly;
4. second client sweep (warm): every result served from the stage memo
   (``cached``), zero new solver queries, nonzero memo hits;
5. clean shutdown via SIGTERM: the daemon drains and exits 0, removing
   its socket.

``--chaos`` instead runs the fault-tolerance smoke (the CI
``chaos-smoke`` job): the same daemon under a committed fault plan — a
dropped connection mid-stream, a poisoned obligation-store row and a
killed worker process — plus an in-process full-registry sweep through
the process backend with every worker killed.  Verdicts must stay
byte-identical to fault-free serial references while ``health`` reports
``degraded`` with causes.

Any violated assertion exits nonzero, failing the CI job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.algorithms import registry
from repro.pipeline import Pipeline, spec_config
from repro.serve.client import ServeClient

#: The registry rows the smoke sweeps (ISSUE floor: at least three).
SPECS = ("svt", "noisy_max", "partial_sum")

#: The committed chaos plan for the daemon leg: sever the first
#: connection at its 4th frame (mid event stream), poison the first
#: verdict row written to the store, kill the worker process solving
#: unit 1 of any process-backend request.
CHAOS_SERVE_PLAN = "serve-drop@4,store-poison@1,worker-kill@1"

#: The committed chaos plan for the in-process registry sweep: every
#: discharge unit kills its worker process, forcing the supervisor to
#: recover the whole sweep through the serial engine.
CHAOS_SWEEP_PLAN = "worker-kill@*"


def _signature(result):
    outcome = result["outcome"]
    return (
        result["name"],
        outcome["verified"],
        tuple(outcome["oids"]),
        outcome["obligations_total"],
        outcome["counters"]["queries"],
    )


def _serial_reference():
    pipe = Pipeline()
    signatures = []
    for name in SPECS:
        spec = registry.get(name)
        run = pipe.run(spec.source, config=spec_config(spec))
        outcome = run.outcome
        signatures.append(
            (
                run.name,
                outcome.verified,
                tuple(outcome.oids),
                outcome.obligations_total,
                outcome.solver_stats()["queries"],
            )
        )
    return signatures


def _wait_for_socket(path: str, process: subprocess.Popen, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if process.poll() is not None:
            raise SystemExit(
                f"FAIL: server exited with {process.returncode} before binding"
            )
        time.sleep(0.05)
    raise SystemExit(f"FAIL: server socket {path} did not appear in {timeout:.0f}s")


def check(condition: bool, label: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {label}")
    print(f"ok: {label}")


def chaos_serve() -> None:
    """The daemon leg: correct results through drop + poison + kill."""
    tmp = tempfile.mkdtemp(prefix="repro-chaos-smoke-")
    sock = os.path.join(tmp, "serve.sock")
    store = os.path.join(tmp, "verdicts.sqlite")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock, "--store", store],
        env={**os.environ, "PYTHONPATH": "src", "REPRO_FAULTS": CHAOS_SERVE_PLAN},
    )
    try:
        _wait_for_socket(sock, server)
        print(f"chaos server up on {sock} (pid {server.pid}, plan {CHAOS_SERVE_PLAN})")

        reference = _serial_reference()

        with ServeClient(socket_path=sock, retries=4) as client:
            # Cold sweep: serve-drop severs the first connection mid
            # event stream; the client must reconnect, retry and still
            # land byte-identical on the serial reference.  The store
            # poison corrupts the first verdict row written here.
            cold = [client.verify(spec=name) for name in SPECS]
            check(
                [_signature(r) for r in cold] == reference,
                "chaos cold sweep matches the serial reference "
                "despite a dropped connection",
            )

            # Process-backend verify of a row the cold sweep did not
            # touch (so the warm store cannot skip its units):
            # worker-kill takes out the worker solving unit 1; the run
            # must recover and still verify.
            hurt_spec = registry.get("num_svt")
            hurt_ref = Pipeline().run(
                hurt_spec.source, config=spec_config(hurt_spec)
            ).outcome
            hurt = client.verify(
                spec="num_svt", config={"backend": "process", "jobs": 2}
            )
            check(
                (hurt["outcome"]["verified"], tuple(hurt["outcome"]["oids"]),
                 hurt["outcome"]["obligations_total"])
                == (hurt_ref.verified, tuple(hurt_ref.oids),
                    hurt_ref.obligations_total),
                "worker-kill: verdict and obligations intact",
            )
            recovery = hurt["outcome"]["counters"].get("recovery")
            check(
                bool(recovery) and recovery["pool_restarts"] >= 1,
                "recovery counters report the survived worker crash",
            )

            # Warm re-verify of the first cold row with a different
            # config fingerprint: the stage memo misses, the store
            # lookup trips over the poisoned row, quarantines it and
            # re-solves — verdict unchanged.
            poisoned = client.verify(spec=SPECS[0], config={"jobs": 2})
            check(
                (poisoned["name"], poisoned["outcome"]["verified"],
                 tuple(poisoned["outcome"]["oids"]),
                 poisoned["outcome"]["obligations_total"]) == reference[0][:4],
                "poisoned store row: verdict and obligations intact",
            )
            # The quarantine (invalid counter) lands on whichever run
            # first re-read the poisoned row — usually the retried cold
            # request after the connection drop, else this warm one.
            check(
                any(
                    (r["outcome"]["counters"].get("store") or {}).get("invalid", 0)
                    for r in cold + [hurt, poisoned]
                ),
                "poisoned store row detected and quarantined",
            )

            health = client.health()
            check(
                health["status"] == "degraded"
                and any("worker-pool" in cause for cause in health["causes"]),
                "health reports degraded with the worker-pool cause",
            )

        server.send_signal(signal.SIGTERM)
        check(server.wait(timeout=60) == 0, "chaos server drains to a clean exit")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def chaos_sweep() -> None:
    """The in-process leg: full-registry process sweep, every worker killed."""
    import dataclasses

    from repro import faults

    names = registry.names(include_buggy=False)
    reference = []
    pipe = Pipeline()
    for name in names:
        spec = registry.get(name)
        outcome = pipe.run(spec.source, config=spec_config(spec)).outcome
        reference.append(
            (
                name,
                outcome.verified,
                tuple(outcome.oids),
                outcome.obligations_total,
                outcome.solver_stats()["queries"],
                outcome.solver_stats()["solve_calls"],
            )
        )
    print(f"serial reference computed for the full registry ({len(names)} rows)")

    faults.install(CHAOS_SWEEP_PLAN)
    try:
        chaotic = []
        pipe = Pipeline()
        recoveries = 0
        incidents = []
        for name in names:
            spec = registry.get(name)
            config = dataclasses.replace(spec_config(spec), backend="process", jobs=2)
            outcome = pipe.run(spec.source, config=config).outcome
            stats = outcome.solver_stats()
            chaotic.append(
                (
                    name,
                    outcome.verified,
                    tuple(outcome.oids),
                    outcome.obligations_total,
                    stats["queries"],
                    stats["solve_calls"],
                )
            )
            if outcome.recovery is not None:
                recoveries += 1
                incidents.extend(outcome.recovery["incidents"])
        check(
            chaotic == reference,
            "registry sweep with every worker killed is byte-identical "
            "to serial (verdicts, oids, query and solve counters)",
        )
        check(recoveries == len(names), "every run recovered through the supervisor")
        # The kills fire inside the worker processes (their own plan
        # copies); the parent-side evidence is the incident log.
        check(
            any("worker crashed" in incident for incident in incidents),
            "recovery incidents record the injected worker kills",
        )
    finally:
        faults.install(None)


def chaos_main() -> int:
    chaos_serve()
    chaos_sweep()
    print("chaos smoke: PASS")
    return 0


def main() -> int:
    if "--chaos" in sys.argv[1:]:
        return chaos_main()
    sock = os.path.join(tempfile.mkdtemp(prefix="repro-serve-smoke-"), "serve.sock")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        _wait_for_socket(sock, server)
        print(f"server up on {sock} (pid {server.pid})")

        reference = _serial_reference()
        print(f"serial reference computed for {', '.join(SPECS)}")

        with ServeClient(socket_path=sock) as client:
            cold = [client.verify(spec=name) for name in SPECS]
            check(
                [_signature(r) for r in cold] == reference,
                "cold sweep matches the serial reference "
                "(verdicts, obligation ids, query counters)",
            )
            check(
                not any(r["cached"] for r in cold),
                "cold sweep genuinely executed (nothing pre-cached)",
            )
            status_cold = client.status()

            warm = [client.verify(spec=name) for name in SPECS]
            status_warm = client.status()
            check(
                [_signature(r) for r in warm] == reference,
                "warm sweep matches the serial reference",
            )
            check(all(r["cached"] for r in warm), "warm sweep fully cache-served")
            check(
                status_warm["query_cache"]["misses"]
                == status_cold["query_cache"]["misses"],
                "warm sweep issued zero new solver queries",
            )
            check(
                sum(status_warm["stage_memo"]["hits"].values()) > 0,
                "warm sweep produced stage-memo hits",
            )
            check(
                status_warm["requests"]["completed"] == 2 * len(SPECS),
                "all requests accounted for",
            )

        server.send_signal(signal.SIGTERM)
        returncode = server.wait(timeout=60)
        check(returncode == 0, "SIGTERM drains the server to a clean exit")
        check(not os.path.exists(sock), "socket removed on shutdown")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
