"""The ``repro serve`` end-to-end smoke check (the CI ``serve-smoke`` job).

Run as ``PYTHONPATH=src python -m repro.serve.smoke``.  It exercises the
full deployment shape — a real daemon subprocess, real sockets — and
asserts the service-mode contract:

1. start ``repro serve`` on a unix socket and wait for the socket to
   appear (the server binds only once it is ready);
2. compute a serial in-process reference for three registry rows;
3. first client sweep (cold): verdicts, obligation ids and query
   counters must equal the serial reference exactly;
4. second client sweep (warm): every result served from the stage memo
   (``cached``), zero new solver queries, nonzero memo hits;
5. clean shutdown via SIGTERM: the daemon drains and exits 0, removing
   its socket.

Any violated assertion exits nonzero, failing the CI job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.algorithms import registry
from repro.pipeline import Pipeline, spec_config
from repro.serve.client import ServeClient

#: The registry rows the smoke sweeps (ISSUE floor: at least three).
SPECS = ("svt", "noisy_max", "partial_sum")


def _signature(result):
    outcome = result["outcome"]
    return (
        result["name"],
        outcome["verified"],
        tuple(outcome["oids"]),
        outcome["obligations_total"],
        outcome["counters"]["queries"],
    )


def _serial_reference():
    pipe = Pipeline()
    signatures = []
    for name in SPECS:
        spec = registry.get(name)
        run = pipe.run(spec.source, config=spec_config(spec))
        outcome = run.outcome
        signatures.append(
            (
                run.name,
                outcome.verified,
                tuple(outcome.oids),
                outcome.obligations_total,
                outcome.solver_stats()["queries"],
            )
        )
    return signatures


def _wait_for_socket(path: str, process: subprocess.Popen, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if process.poll() is not None:
            raise SystemExit(
                f"FAIL: server exited with {process.returncode} before binding"
            )
        time.sleep(0.05)
    raise SystemExit(f"FAIL: server socket {path} did not appear in {timeout:.0f}s")


def check(condition: bool, label: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {label}")
    print(f"ok: {label}")


def main() -> int:
    sock = os.path.join(tempfile.mkdtemp(prefix="repro-serve-smoke-"), "serve.sock")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        _wait_for_socket(sock, server)
        print(f"server up on {sock} (pid {server.pid})")

        reference = _serial_reference()
        print(f"serial reference computed for {', '.join(SPECS)}")

        with ServeClient(socket_path=sock) as client:
            cold = [client.verify(spec=name) for name in SPECS]
            check(
                [_signature(r) for r in cold] == reference,
                "cold sweep matches the serial reference "
                "(verdicts, obligation ids, query counters)",
            )
            check(
                not any(r["cached"] for r in cold),
                "cold sweep genuinely executed (nothing pre-cached)",
            )
            status_cold = client.status()

            warm = [client.verify(spec=name) for name in SPECS]
            status_warm = client.status()
            check(
                [_signature(r) for r in warm] == reference,
                "warm sweep matches the serial reference",
            )
            check(all(r["cached"] for r in warm), "warm sweep fully cache-served")
            check(
                status_warm["query_cache"]["misses"]
                == status_cold["query_cache"]["misses"],
                "warm sweep issued zero new solver queries",
            )
            check(
                sum(status_warm["stage_memo"]["hits"].values()) > 0,
                "warm sweep produced stage-memo hits",
            )
            check(
                status_warm["requests"]["completed"] == 2 * len(SPECS),
                "all requests accounted for",
            )

        server.send_signal(signal.SIGTERM)
        returncode = server.wait(timeout=60)
        check(returncode == 0, "SIGTERM drains the server to a clean exit")
        check(not os.path.exists(sock), "socket removed on shutdown")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
