"""``repro serve``: a long-lived verification service with warm caches.

The subsystem has three layers:

:mod:`repro.serve.protocol`
    The newline-delimited JSON wire format — framing, version
    handshake, and the converters between pipeline objects and wire
    dicts (specified field-by-field in ``docs/protocol.md``).
:mod:`repro.serve.server`
    The asyncio daemon: one warm :class:`~repro.pipeline.Pipeline`
    (stage memo + single-flight query cache) shared by all requests,
    verify work on a bounded thread pool, streamed discharge events,
    graceful drain on signal or request.
:mod:`repro.serve.client`
    A synchronous :class:`ServeClient` for scripts, tests and the
    ``repro client`` subcommand.

``python -m repro.serve.smoke`` runs the end-to-end smoke check CI
uses: a real daemon subprocess, two client sweeps, determinism against
a serial in-process reference, warm-cache assertions, clean shutdown.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ServerThread, VerifyServer

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "VerifyServer",
]
