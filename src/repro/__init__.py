"""repro — a full reproduction of *Proving Differential Privacy with
Shadow Execution* (Wang, Ding, Wang, Kifer, Zhang — PLDI 2019).

The package implements the complete ShadowDP pipeline as five named,
individually runnable stages — ``parse → check → lower → optimize →
verify`` — behind the staged :class:`~repro.pipeline.Pipeline` API:

>>> from repro import Pipeline
>>> pipe = Pipeline()                       # doctest: +SKIP
>>> run = pipe.run(SOURCE)                  # doctest: +SKIP
>>> run.verified                            # doctest: +SKIP
True
>>> run.stages["check"].solver_queries      # doctest: +SKIP
42

Each stage produces a :class:`~repro.pipeline.StageResult` (artifact,
wall-clock seconds, solver-query count); stages are memoized on the
source hash, and :meth:`~repro.pipeline.Pipeline.run_many` batches the
whole algorithm registry through one shared cache.  The one-shot
:func:`pipeline` facade is kept as a thin wrapper over a non-memoizing
``Pipeline``.

Layers (bottom-up):

* :mod:`repro.lang` — the ShadowDP language (Fig. 3): AST, parser,
  pretty printer.
* :mod:`repro.solver` — a from-scratch SMT solver for QF_LRA (CDCL SAT +
  Dutertre–de Moura simplex), replacing Z3.
* :mod:`repro.core` — the flow-sensitive type system with shadow
  execution (Fig. 4), emitting instrumented programs (the ``check``
  stage).
* :mod:`repro.target` — lowering to the non-probabilistic target
  language with the explicit privacy cost ``v_eps`` (Fig. 5) plus
  dead hat-store elimination (the ``lower`` and ``optimize`` stages).
* :mod:`repro.verify` — the safety verifier replacing CPAChecker:
  unrolling, invariant-based Hoare reasoning, Houdini inference and
  counterexample extraction (the ``verify`` stage).
* :mod:`repro.pipeline` — the staged ``Pipeline`` API wiring the stages
  together with per-stage timing, accounting and memoization.
* :mod:`repro.semantics` — executable semantics, including a relational
  validator for the soundness theorem.
* :mod:`repro.algorithms` — all nine Table-1 case studies plus buggy
  SVT variants.
* :mod:`repro.baselines`, :mod:`repro.automation`, :mod:`repro.empirical`
  — the LightDP restriction, annotation inference (Section 6.4) and a
  statistical ε estimator.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.checker import CheckedProgram, check_function
from repro.core.errors import ShadowDPError, ShadowDPTypeError
from repro.lang.parser import parse_function
from repro.pipeline import (
    STAGES,
    Pipeline,
    PipelineError,
    PipelineRun,
    StageResult,
)
from repro.target.transform import TargetProgram, to_target
from repro.verify.verifier import VerificationConfig, VerificationOutcome, verify_target

__version__ = "1.2.0"


@dataclass
class PipelineResult:
    """Everything the end-to-end pipeline produces for one program.

    The legacy one-shot result shape; :class:`~repro.pipeline.PipelineRun`
    is the staged equivalent with per-stage accounting.
    """

    checked: CheckedProgram
    target: TargetProgram
    outcome: VerificationOutcome


def pipeline(source: str, config: Optional[VerificationConfig] = None) -> PipelineResult:
    """Parse, type check, transform and verify one ShadowDP program.

    Thin backward-compatible wrapper over :class:`~repro.pipeline.Pipeline`.
    """
    run = Pipeline(config=config, memoize=False).run(source)
    return PipelineResult(run.checked, run.target, run.outcome)


__all__ = [
    "__version__",
    "pipeline",
    "PipelineResult",
    "Pipeline",
    "PipelineRun",
    "PipelineError",
    "StageResult",
    "STAGES",
    "parse_function",
    "check_function",
    "to_target",
    "verify_target",
    "VerificationConfig",
    "VerificationOutcome",
    "CheckedProgram",
    "TargetProgram",
    "ShadowDPError",
    "ShadowDPTypeError",
]
