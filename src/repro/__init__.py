"""repro — a full reproduction of *Proving Differential Privacy with
Shadow Execution* (Wang, Ding, Wang, Kifer, Zhang — PLDI 2019).

The package implements the complete ShadowDP pipeline plus every
substrate the paper relies on:

>>> from repro import pipeline
>>> result = pipeline(SOURCE)              # doctest: +SKIP
>>> result.outcome.verified                # doctest: +SKIP
True

Layers (bottom-up):

* :mod:`repro.lang` — the ShadowDP language (Fig. 3): AST, parser,
  pretty printer.
* :mod:`repro.solver` — a from-scratch SMT solver for QF_LRA (CDCL SAT +
  Dutertre–de Moura simplex), replacing Z3.
* :mod:`repro.core` — the flow-sensitive type system with shadow
  execution (Fig. 4), emitting instrumented programs.
* :mod:`repro.target` — lowering to the non-probabilistic target
  language with the explicit privacy cost ``v_eps`` (Fig. 5).
* :mod:`repro.verify` — the safety verifier replacing CPAChecker:
  unrolling, invariant-based Hoare reasoning, Houdini inference and
  counterexample extraction.
* :mod:`repro.semantics` — executable semantics, including a relational
  validator for the soundness theorem.
* :mod:`repro.algorithms` — all nine Table-1 case studies plus buggy
  SVT variants.
* :mod:`repro.baselines`, :mod:`repro.automation`, :mod:`repro.empirical`
  — the LightDP restriction, annotation inference (Section 6.4) and a
  statistical ε estimator.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.checker import CheckedProgram, check_function
from repro.core.errors import ShadowDPError, ShadowDPTypeError
from repro.lang.parser import parse_function
from repro.target.transform import TargetProgram, to_target
from repro.verify.verifier import VerificationConfig, VerificationOutcome, verify_target

__version__ = "1.0.0"


@dataclass
class PipelineResult:
    """Everything the end-to-end pipeline produces for one program."""

    checked: CheckedProgram
    target: TargetProgram
    outcome: VerificationOutcome


def pipeline(source: str, config: Optional[VerificationConfig] = None) -> PipelineResult:
    """Parse, type check, transform and verify one ShadowDP program."""
    function = parse_function(source)
    checked = check_function(function)
    target = to_target(checked)
    outcome = verify_target(target, config)
    return PipelineResult(checked, target, outcome)


__all__ = [
    "__version__",
    "pipeline",
    "PipelineResult",
    "parse_function",
    "check_function",
    "to_target",
    "verify_target",
    "VerificationConfig",
    "VerificationOutcome",
    "CheckedProgram",
    "TargetProgram",
    "ShadowDPError",
    "ShadowDPTypeError",
]
