"""Lowering to the non-probabilistic target language (paper Fig. 5).

The second transformation stage of the ShadowDP pipeline: the type
checker's instrumented probabilistic program still contains sampling
commands; this package lowers them into ``havoc`` plus explicit
privacy-cost bookkeeping over the distinguished variable ``v_eps``,
appends the final budget assertion, and optimises the result.

* :mod:`repro.target.transform` — :func:`~repro.target.transform.to_target`
  produces a :class:`~repro.target.transform.TargetProgram`.
* :mod:`repro.target.optimize` — dead-store elimination over the hat
  (distance-tracking) variables.
"""

from repro.target.optimize import eliminate_dead_stores, live_hats
from repro.target.transform import COST_VAR, TargetProgram, to_target

__all__ = [
    "COST_VAR",
    "TargetProgram",
    "to_target",
    "eliminate_dead_stores",
    "live_hats",
]
