"""Dead-store elimination over hat (distance-tracking) variables.

The type checker emits shadow/aligned distance updates uniformly; many
of them track distances nothing ever reads — e.g. Report Noisy Max's
``max^s := max + max^s - i``, which the paper's Figure 1 simply omits.
Removing them keeps the target programs in the exact shape of the
paper's figures and shrinks the verifier's symbolic stores.

Only *hat* stores (assignments to names like ``x^o`` / ``x^s``) are
candidates; normal program variables are never touched.  Liveness is a
flow-insensitive demand fixpoint, which is sound here because removal
requires a hat to be read *nowhere at all* (or only by stores that are
themselves dead): a hat demanded anywhere — by an assert, a branch or
loop condition, a loop invariant, a return expression, a normal
assignment, or a surviving hat store — keeps every store to it.
Trivial identity stores ``x^o := x^o`` are always removed.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.lang import ast


def _expr_hats(expr: ast.Expr) -> Set[str]:
    """Canonical names (``x^o``) of every hat read by an expression."""
    return {ast.hat_name(h.base, h.version) for h in ast.hat_vars(expr)}


def _is_hat_store(cmd: ast.Command) -> bool:
    return isinstance(cmd, ast.Assign) and "^" in cmd.name and "[" not in cmd.name


def _selector_conditions(selector: ast.Selector) -> List[ast.Expr]:
    out: List[ast.Expr] = []
    stack = [selector]
    while stack:
        sel = stack.pop()
        if isinstance(sel, ast.SelectCond):
            out.append(sel.cond)
            stack.extend([sel.then, sel.orelse])
    return out


def live_hats(cmd: ast.Command) -> Set[str]:
    """The hat variables some non-dead part of ``cmd`` demands.

    Seeds are all hats read outside hat-store right-hand sides
    (conditions, invariants, asserts, assumes, returns, normal
    assignments, sampling annotations); the fixpoint then adds the hats
    feeding live stores, so liveness propagates transitively — and a
    store kept alive only by its own right-hand side stays dead.
    """
    demanded: Set[str] = set()
    stores: List[Tuple[str, Set[str]]] = []
    for node in ast.command_iter(cmd):
        if isinstance(node, ast.Assign):
            if _is_hat_store(node):
                stores.append((node.name, _expr_hats(node.expr)))
            else:
                demanded |= _expr_hats(node.expr)
        elif isinstance(node, (ast.Assert, ast.Assume, ast.Return)):
            demanded |= _expr_hats(node.expr)
        elif isinstance(node, ast.If):
            demanded |= _expr_hats(node.cond)
        elif isinstance(node, ast.While):
            demanded |= _expr_hats(node.cond)
            for invariant in node.invariants:
                demanded |= _expr_hats(invariant)
        elif isinstance(node, ast.Sample):
            demanded |= _expr_hats(node.scale) | _expr_hats(node.align)
            for cond in _selector_conditions(node.selector):
                demanded |= _expr_hats(cond)

    live = set(demanded)
    changed = True
    while changed:
        changed = False
        for name, reads in stores:
            if name in live and not reads <= live:
                live |= reads
                changed = True
    return live


def _rebuild(cmd: ast.Command, live: Set[str]) -> ast.Command:
    if _is_hat_store(cmd):
        if cmd.name not in live:
            return ast.Skip()
        base, _, version = cmd.name.rpartition("^")
        if cmd.expr == ast.Hat(base, version):
            return ast.Skip()
        return cmd
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[_rebuild(c, live) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(cmd.cond, _rebuild(cmd.then, live), _rebuild(cmd.orelse, live))
    if isinstance(cmd, ast.While):
        return ast.While(cmd.cond, _rebuild(cmd.body, live), cmd.invariants)
    return cmd


def eliminate_dead_stores(cmd: ast.Command) -> ast.Command:
    """Remove hat stores whose values are never (transitively) read."""
    return _rebuild(cmd, live_hats(cmd))
