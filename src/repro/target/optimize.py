"""Dead-store elimination over hat (distance-tracking) variables.

The type checker emits shadow/aligned distance updates uniformly; many
of them track distances nothing ever reads — e.g. Report Noisy Max's
``max^s := max + max^s - i``, which the paper's Figure 1 simply omits.
Removing them keeps the target programs in the exact shape of the
paper's figures and shrinks the verifier's symbolic stores.

The pass runs over the program's CFG (:func:`dead_store_pass`): one
sweep over the blocks collects every hat *demanded* by a
non-store read — branch and loop-header conditions, loop invariants,
and the read-sets of assert/assume/return/normal-assignment/sampling
statements (:func:`repro.ir.statement_reads`) — then a demand fixpoint
adds the hats feeding live stores, and a rewrite pass
(:func:`repro.ir.map_statements`) drops the rest.

Only *hat* stores (assignments to names like ``x^o`` / ``x^s``) are
candidates; normal program variables are never touched.  Liveness is
deliberately a whole-program demand analysis rather than a
flow-sensitive per-block one: removal requires a hat to be read
*nowhere at all* (or only by stores that are themselves dead), which is
what keeps every surviving store's value identical to the unoptimized
program's on every path.  A hat demanded anywhere keeps every store to
it; trivial identity stores ``x^o := x^o`` are always removed.
"""

from __future__ import annotations

from typing import List, Set, Tuple, Union

from repro.ir import ast_to_cfg, cfg_to_ast, map_statements, statement_kind, statement_reads
from repro.ir.cfg import CFG, Branch, LoopHeader
from repro.lang import ast


def _expr_hats(expr: ast.Expr) -> Set[str]:
    """Canonical names (``x^o``) of every hat read by an expression."""
    return {ast.hat_name(h.base, h.version) for h in ast.hat_vars(expr)}


def _is_hat_store(stmt: ast.Command) -> bool:
    return statement_kind(stmt) == "assign" and "^" in stmt.name and "[" not in stmt.name


def live_hats(program: Union[ast.Command, CFG]) -> Set[str]:
    """The hat variables some non-dead part of the program demands.

    Seeds are all hats read outside hat-store right-hand sides; the
    fixpoint then adds the hats feeding live stores, so liveness
    propagates transitively — and a store kept alive only by its own
    right-hand side stays dead.
    """
    cfg = program if isinstance(program, CFG) else ast_to_cfg(program)
    demanded: Set[str] = set()
    stores: List[Tuple[str, Set[str]]] = []
    # Whole-program demand, so visit order is irrelevant: one sweep over
    # every block (loop bodies included) collects the seeds and the
    # store dependency edges.
    for _, block in cfg.walk_blocks():
        term = block.term
        if isinstance(term, Branch):
            demanded |= _expr_hats(term.cond)
        elif isinstance(term, LoopHeader):
            demanded |= _expr_hats(term.cond)
            for invariant in term.invariants:
                demanded |= _expr_hats(invariant)
        for stmt in block.stmts:
            if _is_hat_store(stmt):
                stores.append((stmt.name, _expr_hats(stmt.expr)))
            else:
                for read in statement_reads(stmt):
                    demanded |= _expr_hats(read)

    live = set(demanded)
    changed = True
    while changed:
        changed = False
        for name, reads in stores:
            if name in live and not reads <= live:
                live |= reads
                changed = True
    return live


def dead_store_pass(cfg: CFG) -> CFG:
    """The ``dse-hats`` rewrite pass over a target CFG."""
    live = live_hats(cfg)

    def rewrite(stmt: ast.Command):
        if _is_hat_store(stmt):
            if stmt.name not in live:
                return None
            base, _, version = stmt.name.rpartition("^")
            if stmt.expr == ast.Hat(base, version):
                return None
        return stmt

    return map_statements(cfg, rewrite)


def eliminate_dead_stores(cmd: ast.Command) -> ast.Command:
    """Remove hat stores whose values are never (transitively) read."""
    return cfg_to_ast(dead_store_pass(ast_to_cfg(cmd)))
