"""The program transformation of paper Figure 5, as CFG passes.

The type checker (:mod:`repro.core.checker`) emits the instrumented
probabilistic program ``c′``: original commands plus asserts and hat
updates, with :class:`~repro.lang.ast.Sample` commands still in place.
This module performs the second stage, producing the *non-probabilistic*
program whose safety implies ε-differential privacy (Theorem 2).  It
runs three named rewrite passes over the program's
:class:`~repro.ir.ProgramIR` (built by the pipeline's ``lower_ir``
stage, or on demand):

* ``lower-samples`` — every sampling command ``η := Lap r, S, n``
  becomes

  .. code-block:: none

      havoc η;
      v_eps := S(⟨v_eps, 0⟩) + |n| / r;

  The selector applies to the pair ⟨aligned cost, shadow cost⟩: the
  aligned execution has accumulated ``v_eps`` so far, while the shadow
  execution re-uses the original noise and has spent nothing — so a
  selector that switches to the shadow execution *resets* the budget
  before paying ``|n| / r`` for aligning the fresh sample.

* ``init-cost`` — ``v_eps := 0`` is prepended to the entry block.

* ``budget-assert`` — ``assert(v_eps <= bound)`` lands immediately
  before the trailing ``return`` in the exit block (the paper's default
  bound is ``eps``; SmartSum declares ``costbound 2 * eps``).

Dead stores to hat variables are eliminated by the separate
:mod:`repro.target.optimize` pass so the output matches the paper's
figures, which omit distance updates nothing ever reads.  Pass
``optimize=False`` to obtain the raw lowering — the staged
:class:`repro.pipeline.Pipeline` exposes it as the ``optimize`` stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.checker import CheckedProgram
from repro.core.simplify import simplify
from repro.ir import ProgramIR, ast_to_cfg, cfg_to_ast, map_statements, statement_kind
from repro.ir.cfg import CFG, Block
from repro.ir.passes import PassManager
from repro.lang import ast

#: The distinguished privacy-cost variable of the target language.
COST_VAR = "v_eps"


@dataclass(frozen=True)
class TargetProgram:
    """A lowered, verifier-ready program.

    Attributes
    ----------
    function:
        The original source function (carries the precondition ``Ψ``
        that verification instantiates as premises).
    body:
        The non-probabilistic command: no ``Sample`` nodes remain, the
        privacy cost is tracked in ``v_eps`` and asserted against
        ``cost_bound`` before the final ``return``.
    cost_bound:
        The right-hand side of the final budget assertion.
    aligned_only:
        True when the program was checked in the LightDP (aligned-only)
        fragment — no shadow instrumentation exists in ``body``.
    ir:
        The program's CFG plus the trail of passes that produced it
        (``None`` for hand-built targets; rebuilt on demand).
    """

    function: ast.FunctionDef
    body: ast.Command
    cost_bound: ast.Expr
    aligned_only: bool
    ir: Optional[ProgramIR] = None

    @property
    def name(self) -> str:
        return self.function.name

    def program_ir(self) -> ProgramIR:
        """This program's IR, rebuilding the CFG when not cached."""
        if self.ir is not None:
            return self.ir
        return ProgramIR(self.function, ast_to_cfg(self.body))

    def optimized(self) -> "TargetProgram":
        """This program with dead hat stores eliminated."""
        from repro.target.optimize import dead_store_pass

        ir = self.program_ir()
        ir = ir.with_cfg(dead_store_pass(ir.cfg), "dse-hats")
        return TargetProgram(
            function=self.function,
            body=cfg_to_ast(ir.cfg),
            cost_bound=self.cost_bound,
            aligned_only=self.aligned_only,
            ir=ir,
        )


# ---------------------------------------------------------------------------
# Sample lowering
# ---------------------------------------------------------------------------


def sample_cost(sample: ast.Sample) -> ast.Expr:
    """The privacy-cost update expression for one sampling command.

    ``S(⟨v_eps, 0⟩) + |n| / r`` — simplification turns the paper's
    Fig. 1 update into exactly ``Ω ? eps : v_eps`` and SVT's into
    ``Ω ? v_eps + 2 * eps / (4 * N) : v_eps``.
    """
    selected = sample.selector.apply(ast.Var(COST_VAR), ast.ZERO)
    per_sample = ast.BinOp("/", ast.Abs(sample.align), sample.scale)
    return simplify(ast.BinOp("+", selected, per_sample))


def _lower_sample_stmt(stmt: ast.Command):
    if statement_kind(stmt) == "sample":
        return (ast.Havoc(stmt.name), ast.Assign(COST_VAR, sample_cost(stmt)))
    return stmt


def lower_samples(cfg: CFG) -> CFG:
    """The ``lower-samples`` pass: ``Sample`` → ``havoc`` + cost update."""
    return map_statements(cfg, _lower_sample_stmt)


def lower_command(cmd: ast.Command) -> ast.Command:
    """AST-level convenience wrapper around the ``lower-samples`` pass."""
    return cfg_to_ast(lower_samples(ast_to_cfg(cmd)))


# ---------------------------------------------------------------------------
# Cost-variable bracketing
# ---------------------------------------------------------------------------


def init_cost(cfg: CFG) -> CFG:
    """The ``init-cost`` pass: prepend ``v_eps := 0`` to the entry block."""
    out = cfg.copy()
    out.block(out.entry).stmts.insert(0, ast.Assign(COST_VAR, ast.ZERO))
    return out


def _budget_assert_pass(bound: ast.Expr):
    def run(cfg: CFG) -> CFG:
        out = cfg.copy()
        block: Block = out.block(out.exit_id())
        final = ast.Assert(ast.BinOp("<=", ast.Var(COST_VAR), bound))
        if block.stmts and statement_kind(block.stmts[-1]) == "return_":
            block.stmts.insert(len(block.stmts) - 1, final)
        else:
            block.stmts.append(final)
        return out

    return run


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def to_target(
    checked: CheckedProgram,
    optimize: bool = True,
    ir: Optional[ProgramIR] = None,
) -> TargetProgram:
    """Lower a type-checked program to the target language (Fig. 5).

    ``ir`` is the checked body's :class:`~repro.ir.ProgramIR` when the
    caller already built it (the pipeline's ``lower_ir`` stage); it is
    constructed on demand otherwise.
    """
    bound = simplify(checked.function.cost_bound)
    program_ir = ir if ir is not None else ProgramIR(checked.function, ast_to_cfg(checked.body))
    manager = PassManager(
        [
            ("lower-samples", lower_samples),
            ("init-cost", init_cost),
            ("budget-assert", _budget_assert_pass(bound)),
        ]
    )
    lowered = manager.run(program_ir)
    target = TargetProgram(
        function=checked.function,
        body=cfg_to_ast(lowered.cfg),
        cost_bound=bound,
        aligned_only=checked.aligned_only,
        ir=lowered,
    )
    if optimize:
        target = target.optimized()
    return target
