"""The program transformation of paper Figure 5.

The type checker (:mod:`repro.core.checker`) emits the instrumented
probabilistic program ``c′``: original commands plus asserts and hat
updates, with :class:`~repro.lang.ast.Sample` commands still in place.
This module performs the second stage, producing the *non-probabilistic*
program whose safety implies ε-differential privacy (Theorem 2):

* every sampling command ``η := Lap r, S, n`` becomes

  .. code-block:: none

      havoc η;
      v_eps := S(⟨v_eps, 0⟩) + |n| / r;

  The selector applies to the pair ⟨aligned cost, shadow cost⟩: the
  aligned execution has accumulated ``v_eps`` so far, while the shadow
  execution re-uses the original noise and has spent nothing — so a
  selector that switches to the shadow execution *resets* the budget
  before paying ``|n| / r`` for aligning the fresh sample.

* ``v_eps := 0`` is prepended, and ``assert(v_eps <= bound)`` is placed
  immediately before the final ``return`` (the paper's default bound is
  ``eps``; SmartSum declares ``costbound 2 * eps``).

* dead stores to hat variables are eliminated
  (:mod:`repro.target.optimize`) so the output matches the paper's
  figures, which omit distance updates nothing ever reads.  Pass
  ``optimize=False`` to obtain the raw lowering — the staged
  :class:`repro.pipeline.Pipeline` exposes it as the separate
  ``optimize`` stage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.checker import CheckedProgram
from repro.core.simplify import simplify
from repro.lang import ast

#: The distinguished privacy-cost variable of the target language.
COST_VAR = "v_eps"


@dataclass(frozen=True)
class TargetProgram:
    """A lowered, verifier-ready program.

    Attributes
    ----------
    function:
        The original source function (carries the precondition ``Ψ``
        that verification instantiates as premises).
    body:
        The non-probabilistic command: no ``Sample`` nodes remain, the
        privacy cost is tracked in ``v_eps`` and asserted against
        ``cost_bound`` before the final ``return``.
    cost_bound:
        The right-hand side of the final budget assertion.
    aligned_only:
        True when the program was checked in the LightDP (aligned-only)
        fragment — no shadow instrumentation exists in ``body``.
    """

    function: ast.FunctionDef
    body: ast.Command
    cost_bound: ast.Expr
    aligned_only: bool

    @property
    def name(self) -> str:
        return self.function.name

    def optimized(self) -> "TargetProgram":
        """This program with dead hat stores eliminated."""
        from repro.target.optimize import eliminate_dead_stores

        return replace(self, body=eliminate_dead_stores(self.body))


# ---------------------------------------------------------------------------
# Sample lowering
# ---------------------------------------------------------------------------


def sample_cost(sample: ast.Sample) -> ast.Expr:
    """The privacy-cost update expression for one sampling command.

    ``S(⟨v_eps, 0⟩) + |n| / r`` — simplification turns the paper's
    Fig. 1 update into exactly ``Ω ? eps : v_eps`` and SVT's into
    ``Ω ? v_eps + 2 * eps / (4 * N) : v_eps``.
    """
    selected = sample.selector.apply(ast.Var(COST_VAR), ast.ZERO)
    per_sample = ast.BinOp("/", ast.Abs(sample.align), sample.scale)
    return simplify(ast.BinOp("+", selected, per_sample))


def lower_command(cmd: ast.Command) -> ast.Command:
    """Replace every ``Sample`` with ``havoc`` plus its cost update."""
    if isinstance(cmd, ast.Sample):
        return ast.seq(ast.Havoc(cmd.name), ast.Assign(COST_VAR, sample_cost(cmd)))
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[lower_command(c) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(cmd.cond, lower_command(cmd.then), lower_command(cmd.orelse))
    if isinstance(cmd, ast.While):
        return ast.While(cmd.cond, lower_command(cmd.body), cmd.invariants)
    return cmd


def _with_final_assert(body: ast.Command, final: ast.Command) -> ast.Command:
    """Insert the budget assertion immediately before the trailing return."""
    if isinstance(body, ast.Seq) and body.commands and isinstance(body.commands[-1], ast.Return):
        return ast.seq(*body.commands[:-1], final, body.commands[-1])
    if isinstance(body, ast.Return):
        return ast.seq(final, body)
    return ast.seq(body, final)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def to_target(checked: CheckedProgram, optimize: bool = True) -> TargetProgram:
    """Lower a type-checked program to the target language (Fig. 5)."""
    bound = simplify(checked.function.cost_bound)
    body = ast.seq(
        ast.Assign(COST_VAR, ast.ZERO),
        lower_command(checked.body),
    )
    body = _with_final_assert(
        body, ast.Assert(ast.BinOp("<=", ast.Var(COST_VAR), bound))
    )
    target = TargetProgram(
        function=checked.function,
        body=body,
        cost_bound=bound,
        aligned_only=checked.aligned_only,
    )
    if optimize:
        target = target.optimized()
    return target
