"""Ablations of the design choices called out in DESIGN.md.

1. **Shadow execution on/off** — LightDP mode must reject Report Noisy
   Max while accepting the aligned-only algorithms (expressiveness gap,
   paper Section 7).
2. **Nonlinear lemmas on/off** — without the monomial instantiation
   lemmas, the general-parameter SVT proof must fail (this is the
   paper's "CPAChecker needs rewrites" phenomenon, reproduced).
3. **Dead-store elimination on/off** — output size of the transformed
   programs (the paper's "slightly simplified for readability").
4. **Unroll-depth sweep** — fixed-regime verification cost as the
   concrete size grows.
"""

import pytest

from repro.algorithms import get
from repro.baselines import check_lightdp
from repro.core.checker import check_function
from repro.core.errors import ShadowDPTypeError
from repro.lang.pretty import pretty_command
from repro.target.transform import to_target
from repro.verify.verifier import VerificationConfig, verify_target


class TestShadowAblation:
    def test_lightdp_rejects_noisy_max(self, benchmark):
        function = get("noisy_max").function()

        def attempt():
            try:
                check_lightdp(function)
                return False
            except ShadowDPTypeError:
                return True

        rejected = benchmark.pedantic(attempt, rounds=3, iterations=1)
        assert rejected

    @pytest.mark.parametrize("name", ["svt", "gap_svt", "partial_sum"])
    def test_lightdp_handles_aligned_only(self, benchmark, name):
        function = get(name).function()
        checked = benchmark.pedantic(lambda: check_lightdp(function), rounds=3, iterations=1)
        assert checked.aligned_only


class TestLemmaAblation:
    def test_svt_needs_nonlinear_lemmas(self, benchmark):
        spec = get("svt")
        target = spec.target()

        def verify(use_lemmas):
            config = VerificationConfig(
                mode="invariant",
                assumptions=spec.assumption_exprs(),
                use_lemmas=use_lemmas,
                collect_models=False,
            )
            return verify_target(target, config)

        with_lemmas = benchmark.pedantic(lambda: verify(True), rounds=1, iterations=1)
        without = verify(False)
        assert with_lemmas.verified
        assert not without.verified  # the abstraction alone cannot prove it


class TestDeadStoreAblation:
    @pytest.mark.parametrize("name", ["noisy_max", "smart_sum"])
    def test_output_size_shrinks(self, benchmark, name):
        checked = check_function(get(name).function())

        optimized = benchmark.pedantic(
            lambda: to_target(checked, optimize=True), rounds=3, iterations=1
        )
        raw = to_target(checked, optimize=False)
        size_opt = len(pretty_command(optimized.body).splitlines())
        size_raw = len(pretty_command(raw.body).splitlines())
        assert size_opt <= size_raw

    def test_noisy_max_drops_dead_max_shadow(self):
        checked = check_function(get("noisy_max").function())
        raw = pretty_command(to_target(checked, optimize=False).body)
        opt = pretty_command(to_target(checked, optimize=True).body)
        assert "max^s" in raw
        assert "max^s" not in opt


class TestUnrollSweep:
    @pytest.mark.parametrize("size", [2, 4, 6])
    def test_noisy_max_scaling(self, benchmark, size):
        spec = get("noisy_max")
        target = spec.target()
        config = VerificationConfig(
            mode="unroll",
            bindings={"size": size},
            assumptions=spec.assumption_exprs(),
            unroll_limit=size + 2,
            collect_models=False,
        )
        outcome = benchmark.pedantic(lambda: verify_target(target, config), rounds=1, iterations=1)
        assert outcome.verified
