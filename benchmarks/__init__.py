"""Benchmark harness regenerating every table and figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module maps to a
paper artifact (see DESIGN.md's experiment index):

* ``bench_table1``      — Table 1 (type-check + verification seconds).
* ``bench_figures``     — Figures 1/6/10/11/12 (program transformation).
* ``bench_alignment``   — Figure 2 (the selective-alignment trace) and
  the relational soundness validation (Section 5, executable).
* ``bench_inference``   — Section 6.4 (annotation discovery).
* ``bench_bugfinding``  — Sections 1/8 (counterexamples for buggy SVTs).
* ``bench_ablation``    — design-choice ablations from DESIGN.md.
"""
