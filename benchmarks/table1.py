"""Regeneration of the paper's Table 1.

For each row the paper reports: type-check seconds,
verification seconds for ShadowDP (with a "Rewrite" column — their
general-parameter run with rewrites/manual invariants — and a "Fix ε"
column), and the verification seconds of the coupling-proof synthesiser
of Albarghouthi & Hsu [2] (quoted from the paper; their system is not
available).

Our two regimes correspond exactly:

* **Rewrite → invariant mode**: unbounded verification with the manual
  loop invariants carried in the sources (plus the monomial lemmas that
  replace the paper's hand rewrites of nonlinear cost updates).
* **Fix ε → unroll mode**: concrete loop bounds / parameters, full
  unrolling (parameters we keep symbolic wherever linearity allows).

The reproduction claim is about *shape*: every algorithm checks and
verifies in seconds, one-to-two orders of magnitude below the quoted
coupling-verifier times; Gap SVT (the novel variant) verifies where [2]
has no entry at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.algorithms import TABLE1_ORDER, get
from repro.baselines import COUPLING_VERIFIER_SECONDS
from repro.core.checker import check_function
from repro.target.transform import to_target
from repro.verify.verifier import VerificationConfig, verify_target

ROW_LABELS = {
    ("noisy_max", None): ("noisy_max", "Report Noisy Max"),
    ("svt", "n1"): ("svt_n1", "Sparse Vector Technique (N = 1)"),
    ("svt", None): ("svt", "Sparse Vector Technique"),
    ("num_svt", "n1"): ("num_svt_n1", "Numerical SVT (N = 1)"),
    ("num_svt", None): ("num_svt", "Numerical SVT"),
    ("gap_svt", "n1"): ("gap_svt_n1", "Gap SVT (N = 1)"),
    ("gap_svt", None): ("gap_svt", "Gap Sparse Vector Technique"),
    ("partial_sum", None): ("partial_sum", "Partial Sum"),
    ("prefix_sum", None): ("prefix_sum", "Prefix Sum"),
    ("smart_sum", None): ("smart_sum", "Smart Sum"),
}


@dataclass
class Table1Row:
    key: str
    label: str
    typecheck_seconds: float
    invariant_seconds: Optional[float]
    fixed_seconds: float
    coupling_seconds: Optional[float]
    verified: bool


def _time_typecheck(spec) -> float:
    function = spec.function()
    start = time.perf_counter()
    check_function(function)
    return time.perf_counter() - start


def measure_row(name: str, extra_bindings: Optional[Dict] = None) -> Table1Row:
    spec = get(name)
    key, label = ROW_LABELS[(name, "n1" if extra_bindings else None)]

    t_check = _time_typecheck(spec)
    target = to_target(check_function(spec.function()))

    # "Rewrite" regime: unbounded, symbolic parameters, manual invariants.
    inv_config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
    if extra_bindings:
        inv_config = VerificationConfig(
            mode="invariant",
            bindings=dict(extra_bindings),
            assumptions=spec.assumption_exprs(),
        )
    inv_outcome = verify_target(target, inv_config)

    # "Fix ε" regime: concrete loop bounds (and N where applicable).
    bindings = dict(spec.fixed_bindings)
    bindings.update(extra_bindings or {})
    fix_config = VerificationConfig(
        mode="unroll", bindings=bindings, assumptions=spec.assumption_exprs(), unroll_limit=16
    )
    fix_outcome = verify_target(target, fix_config)

    return Table1Row(
        key=key,
        label=label,
        typecheck_seconds=t_check,
        invariant_seconds=inv_outcome.seconds if inv_outcome.verified else None,
        fixed_seconds=fix_outcome.seconds,
        coupling_seconds=COUPLING_VERIFIER_SECONDS.get(key),
        verified=inv_outcome.verified and fix_outcome.verified,
    )


def generate_table1() -> List[Table1Row]:
    rows = []
    for name, extra in TABLE1_ORDER:
        rows.append(measure_row(name, extra))
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    header = (
        f"{'Algorithm':38s} {'Check(s)':>9s} {'Rewrite(s)':>11s} "
        f"{'Fix-param(s)':>13s} {'[2](s)':>8s} {'OK':>3s}"
    )
    lines = ["Table 1 — type checking and verification time", header, "-" * len(header)]
    for row in rows:
        inv = f"{row.invariant_seconds:.3f}" if row.invariant_seconds is not None else "—"
        coupling = f"{row.coupling_seconds:.0f}" if row.coupling_seconds else "N/A"
        lines.append(
            f"{row.label:38s} {row.typecheck_seconds:>9.3f} {inv:>11s} "
            f"{row.fixed_seconds:>13.3f} {coupling:>8s} {'yes' if row.verified else 'NO':>3s}"
        )
    total_check = sum(r.typecheck_seconds for r in rows)
    total_fix = sum(r.fixed_seconds for r in rows)
    lines.append("-" * len(header))
    lines.append(
        f"{'TOTAL':38s} {total_check:>9.3f} {'':>11s} {total_fix:>13.3f}"
    )
    return "\n".join(lines)
