"""Solver-stack benchmark: incremental discharge vs the pre-PR baseline.

Measures, over the registry algorithms, the cost of discharging all
verification obligations two ways:

* **baseline** — a faithful replica of the pre-incremental solver layer:
  a fresh ``Encoder`` + ``SMTSolver`` per query, raw-AST cache keys
  (alpha-trivial duplicates miss), every refuted ``is_valid`` re-encoded
  and re-solved a second time by ``find_model``, obligations strictly
  serial, no state shared between Houdini rounds or the final
  verification.
* **incremental** — the current stack: obligations grouped by shared
  path prefix, each group discharged under one pushed
  :class:`SolverContext` (conjoined goals, model-guided refinement),
  refuted checks returning their model from the refuting solve, and one
  normalized-query :class:`QueryCache` shared across the whole sweep.

Reported per workload and in total: entailment queries asked, DPLL(T)
solve calls actually executed, simplex pivots (incremental side),
queries per second, and wall-clock time.  A separate **microbench**
section exercises the inner loops in isolation: term-layer interning
throughput, simplex pivoting on a difference chain, and CDCL
propagation on a planted 3-SAT instance.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_solver.py [--quick] \
        [--jobs N] [--json-out BENCH_solver.json]

    # CI regression guard: quick sweep, compare the (deterministic)
    # solve-call and pivot counters against the committed reference,
    # fail on >20% regression.
    PYTHONPATH=src:. python benchmarks/bench_solver.py --guard BENCH_solver.json

    # Refresh the committed reference counters in place.
    PYTHONPATH=src:. python benchmarks/bench_solver.py \
        --update-reference BENCH_solver.json

``--quick`` runs a small subset (seconds, for CI smoke); the default
sweep covers every registry algorithm in the unroll regime, the correct
ones in the invariant regime, and an annotation-free Houdini run.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lang import ast
from repro.solver import formula as F
from repro.solver import intern
from repro.solver.delta import DeltaRat
from repro.solver.encode import Encoder
from repro.solver.linear import LinExpr
from repro.solver.profile import SolverProfile
from repro.solver.sat import CDCLSolver
from repro.solver.simplex import Simplex
from repro.solver.smt import SMTSolver
from repro.solver.context import QueryCache
from repro.target.transform import TargetProgram
from repro.verify.houdini import default_candidates, infer_invariants, peel_loops
from repro.verify.vcgen import VCGenerator
from repro.verify.verifier import (
    ObligationChecker,
    VerificationConfig,
    _bind_psi,
    bind_command,
    bind_expr,
    verify_target,
)

from repro.algorithms import all_specs, get
from repro.pipeline import spec_config


# ---------------------------------------------------------------------------
# The pre-PR baseline, replicated
# ---------------------------------------------------------------------------


class LegacyValidityChecker:
    """The seed-era validity interface: raw keys, double-solve refutations."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple, bool] = {}
        self.queries = 0
        self.cache_hits = 0
        self.solve_calls = 0

    def _solve(self, goal: ast.Expr, premises: Tuple[ast.Expr, ...]):
        self.solve_calls += 1
        encoder = Encoder()
        solver = SMTSolver()
        for premise in premises:
            solver.add(encoder.boolean(premise))
        solver.add(F.mk_not(encoder.boolean(goal)))
        return solver.check()

    def is_valid(self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()) -> bool:
        premises = tuple(premises)
        key = (goal, premises)
        self.queries += 1
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        answer = self._solve(goal, premises).is_unsat
        self._cache[key] = answer
        return answer

    def find_model(self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()):
        # The pre-PR find_model had no cache: always a full second solve.
        result = self._solve(goal, tuple(premises))
        if result.is_unsat:
            return None
        return result.arith_model, result.bool_model


class LegacyObligationChecker(ObligationChecker):
    """Serial, one-shot discharge with the solve-twice refutation path."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.legacy_validity = LegacyValidityChecker()

    def check(self, obligation):
        premises = self.premises_for(obligation)
        if self.legacy_validity.is_valid(obligation.goal, premises):
            return None
        if not self.collect_models:
            return self._failure(obligation, False, None)
        model = self.legacy_validity.find_model(obligation.goal, premises)
        if model is None:
            return None
        return self._failure(obligation, False, model)

    def check_all(self, obligations, skip=None, on_failure=None, batch=True):
        failures = []
        for obligation in obligations:
            if skip is not None and skip(obligation):
                continue
            failure = self.check(obligation)
            if failure is not None:
                failures.append(failure)
                if on_failure is not None:
                    on_failure(obligation)
        return failures


def legacy_verify(target: TargetProgram, config: VerificationConfig):
    """The pre-PR ``verify_target`` control flow, counter-instrumented."""
    body = bind_command(target.body, config.bindings)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    assumptions = [a for a in assumptions if a != ast.TRUE]

    generator = VCGenerator(
        unroll_limit=config.unroll_limit,
        use_invariants=(config.mode == "invariant"),
    )
    generator.run(body)
    checker = LegacyObligationChecker(psi, assumptions, use_lemmas=config.use_lemmas)
    failures = checker.check_all(generator.obligations)
    return failures, checker.legacy_validity


def legacy_houdini(target: TargetProgram, config: VerificationConfig, peel: int = 1):
    """The pre-PR Houdini loop: one raw-keyed checker for the rounds, a
    fresh checker re-solving everything for the final verification."""
    pool = default_candidates(target, config.bindings)
    body = peel_loops(bind_command(target.body, config.bindings), peel)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    checker = LegacyObligationChecker(psi, assumptions, collect_models=False)

    surviving = list(pool)
    for _ in range(64):
        generator = VCGenerator(use_invariants=True, extra_invariants=tuple(surviving))
        generator.run(body)
        bad = set()
        for obligation in generator.obligations:
            if obligation.tag not in ("invariant-entry", "invariant-preserved"):
                continue
            label = obligation.label
            if not (isinstance(label, tuple) and label[0] == "extra"):
                continue
            if label[1] in bad:
                continue
            if checker.check(obligation) is not None:
                bad.add(label[1])
        if not bad:
            break
        surviving = [inv for k, inv in enumerate(surviving) if k not in bad]

    generator = VCGenerator(use_invariants=True, extra_invariants=tuple(surviving))
    generator.run(body)
    final = LegacyObligationChecker(psi, assumptions)
    failures = final.check_all(generator.obligations)
    return failures, (checker.legacy_validity, final.legacy_validity)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _strip_invariants(cmd: ast.Command) -> ast.Command:
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[_strip_invariants(c) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(cmd.cond, _strip_invariants(cmd.then), _strip_invariants(cmd.orelse))
    if isinstance(cmd, ast.While):
        return ast.While(cmd.cond, _strip_invariants(cmd.body), ())
    return cmd


def _bare_target(name: str) -> TargetProgram:
    target = get(name).target()
    return TargetProgram(
        target.function, _strip_invariants(target.body), target.cost_bound, target.aligned_only
    )


#: The quick-mode unroll sweep (CI smoke and the counter guard); the
#: chaos guard re-runs exactly this list through the process backend.
QUICK_UNROLL_NAMES = ("noisy_max", "svt", "bad_svt_no_budget")


def run_workloads(quick: bool, jobs: int) -> Dict:
    unroll_names = (
        list(QUICK_UNROLL_NAMES)
        if quick
        else [s.name for s in all_specs()]
    )
    invariant_names = (
        ["svt"] if quick else [s.name for s in all_specs(include_buggy=False)]
    )
    houdini_names = ["noisy_max"]

    results: Dict = {"workloads": {}, "quick": quick, "jobs": jobs}

    def record(
        workload: str,
        side: str,
        queries: int,
        hits: int,
        solves: int,
        seconds: float,
        pivots: Optional[int] = None,
    ) -> None:
        entry = results["workloads"].setdefault(workload, {})
        entry[side] = {
            "queries": queries,
            "cache_hits": hits,
            "solve_calls": solves,
            "seconds": round(seconds, 3),
            "queries_per_second": round(queries / seconds, 2) if seconds > 0 else None,
        }
        if pivots is not None:
            entry[side]["pivots"] = pivots

    # -- baseline ------------------------------------------------------------
    queries = hits = solves = 0
    start = time.perf_counter()
    for name in unroll_names:
        spec = get(name)
        _, validity = legacy_verify(spec.target(), spec_config(spec))
        queries += validity.queries
        hits += validity.cache_hits
        solves += validity.solve_calls
    record("registry-unroll", "baseline", queries, hits, solves, time.perf_counter() - start)

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in invariant_names:
        spec = get(name)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        _, validity = legacy_verify(spec.target(), config)
        queries += validity.queries
        hits += validity.cache_hits
        solves += validity.solve_calls
    record("registry-invariant", "baseline", queries, hits, solves, time.perf_counter() - start)

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in houdini_names:
        spec = get(name)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        _, validities = legacy_houdini(_bare_target(name), config)
        for validity in validities:
            queries += validity.queries
            hits += validity.cache_hits
            solves += validity.solve_calls
    record("houdini", "baseline", queries, hits, solves, time.perf_counter() - start)

    # -- incremental ---------------------------------------------------------
    cache = QueryCache()

    queries = hits = solves = pivots = 0
    start = time.perf_counter()
    for name in unroll_names:
        spec = get(name)
        config = spec_config(spec)
        config.jobs = jobs
        config.profile = True
        outcome = verify_target(spec.target(), config, cache=cache)
        stats = outcome.solver_stats()
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
        pivots += outcome.profile["pivots"]
    record(
        "registry-unroll", "incremental", queries, hits, solves,
        time.perf_counter() - start, pivots=pivots,
    )

    queries = hits = solves = pivots = 0
    start = time.perf_counter()
    for name in invariant_names:
        spec = get(name)
        config = VerificationConfig(
            mode="invariant", assumptions=spec.assumption_exprs(), jobs=jobs,
            profile=True,
        )
        outcome = verify_target(spec.target(), config, cache=cache)
        stats = outcome.solver_stats()
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
        pivots += outcome.profile["pivots"]
    record(
        "registry-invariant", "incremental", queries, hits, solves,
        time.perf_counter() - start, pivots=pivots,
    )

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in houdini_names:
        spec = get(name)
        config = VerificationConfig(
            mode="invariant", assumptions=spec.assumption_exprs(), jobs=jobs
        )
        result = infer_invariants(_bare_target(name), config, peel=1, cache=cache)
        stats = result.solver_stats  # whole run: pruning rounds + final
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
    record("houdini", "incremental", queries, hits, solves, time.perf_counter() - start)

    # -- threaded backend (registry invariant sweep) ---------------------------
    # Same work as the serial incremental invariant sweep, scheduled by
    # the ThreadedBackend on 4 workers with its own fresh cache.  The
    # single-flight cache keeps verdicts and solve counts identical;
    # wall clock is recorded honestly — the solver is pure Python, so on
    # a stock GIL build (and especially single-core CI runners) workers
    # interleave and no speedup materializes.
    threaded_cache = QueryCache()
    serial_seconds = results["workloads"]["registry-invariant"]["incremental"]["seconds"]
    queries = hits = solves = 0
    start = time.perf_counter()
    for name in invariant_names:
        spec = get(name)
        config = VerificationConfig(
            mode="invariant", assumptions=spec.assumption_exprs(),
            jobs=4, backend="threaded",
        )
        outcome = verify_target(spec.target(), config, cache=threaded_cache)
        stats = outcome.solver_stats()
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
    threaded_seconds = time.perf_counter() - start
    results["threaded_invariant"] = {
        "jobs": 4,
        "queries": queries,
        "cache_hits": hits,
        "solve_calls": solves,
        "seconds": round(threaded_seconds, 3),
        "serial_seconds": serial_seconds,
        "speedup_vs_serial": (
            round(serial_seconds / threaded_seconds, 2) if threaded_seconds > 0 else None
        ),
    }

    # -- process backend (registry unroll sweep, jobs sweep) -------------------
    # Same work as the serial incremental unroll sweep, solved on worker
    # processes.  Each job count gets its own fresh cache so its counters
    # are directly comparable to the serial sweep — the oracle-replay
    # design makes them *identical* (asserted below), which is the whole
    # point: multicore scheduling with byte-for-byte serial accounting.
    serial_unroll = results["workloads"]["registry-unroll"]["incremental"]
    process_section: Dict = {
        "serial_seconds": serial_unroll["seconds"],
        "by_jobs": {},
    }
    for process_jobs in (1, 2, 4):
        process_cache = QueryCache()
        queries = hits = solves = 0
        start = time.perf_counter()
        for name in unroll_names:
            spec = get(name)
            config = spec_config(spec)
            config.backend = "process"
            config.jobs = process_jobs
            outcome = verify_target(spec.target(), config, cache=process_cache)
            stats = outcome.solver_stats()
            queries += stats["queries"]
            hits += stats["cache_hits"]
            solves += stats["solve_calls"]
        seconds = time.perf_counter() - start
        process_section["by_jobs"][str(process_jobs)] = {
            "queries": queries,
            "cache_hits": hits,
            "solve_calls": solves,
            "seconds": round(seconds, 3),
            "speedup_vs_serial": (
                round(serial_unroll["seconds"] / seconds, 2) if seconds > 0 else None
            ),
            "identical_to_serial": (
                queries == serial_unroll["queries"]
                and hits == serial_unroll["cache_hits"]
                and solves == serial_unroll["solve_calls"]
            ),
        }
    results["process_jobs"] = process_section

    # -- persistent store: cold vs warm (registry unroll sweep) ----------------
    results["warm_store"] = run_warm_store(unroll_names)

    # -- proof witnesses: emission cost + trusted revalidation -----------------
    results["witness"] = run_witness(unroll_names)

    # -- totals ---------------------------------------------------------------
    totals: Dict = {}
    for side in ("baseline", "incremental"):
        totals[side] = {
            key: sum(w[side][key] for w in results["workloads"].values())
            for key in ("queries", "cache_hits", "solve_calls")
        }
        totals[side]["seconds"] = round(
            sum(w[side]["seconds"] for w in results["workloads"].values()), 3
        )
    totals["incremental"]["pivots"] = sum(
        w["incremental"].get("pivots", 0) for w in results["workloads"].values()
    )
    base, incr = totals["baseline"], totals["incremental"]
    totals["solve_call_reduction"] = (
        round(base["solve_calls"] / incr["solve_calls"], 2) if incr["solve_calls"] else None
    )
    totals["wall_time_speedup"] = (
        round(base["seconds"] / incr["seconds"], 2) if incr["seconds"] else None
    )
    results["totals"] = totals
    return results


def run_warm_store(names: List[str]) -> Dict:
    """Cold vs warm sweep through a temporary persistent store.

    Both passes use a fresh in-memory :class:`QueryCache`, so every warm
    answer comes from disk — the warm pass is required to perform
    **zero** DPLL(T) solves (the cross-run incrementality contract the
    CI guard enforces).
    """
    import os
    import tempfile

    out: Dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "obligations.sqlite")
        for side in ("cold", "warm"):
            cache = QueryCache()
            obligations = solves = store_hits = store_writes = 0
            start = time.perf_counter()
            for name in names:
                spec = get(name)
                config = spec_config(spec)
                config.store = store_path
                outcome = verify_target(spec.target(), config, cache=cache)
                obligations += outcome.obligations_total
                solves += outcome.solve_calls
                store_hits += outcome.store["hits"]
                store_writes += outcome.store["writes"]
            out[side] = {
                "obligations": obligations,
                "solve_calls": solves,
                "store_hits": store_hits,
                "store_writes": store_writes,
                "seconds": round(time.perf_counter() - start, 3),
            }
    cold_s, warm_s = out["cold"]["seconds"], out["warm"]["seconds"]
    out["speedup"] = round(cold_s / warm_s, 1) if warm_s > 0 else None
    return out


def run_witness(names: List[str]) -> Dict:
    """Witness emission cost and trusted-revalidation throughput.

    Emission must be observationally free (identical query/hit/solve
    counters with witnesses on and off) and near-free in wall clock —
    the guard bounds the on/off delta at
    :data:`WITNESS_OVERHEAD_LIMIT`.  Each side takes the best of three
    sweeps so sub-second timing noise doesn't trip the bound.  The
    revalidation figure is the point of the subsystem: re-checking a
    stored sweep with the trusted kernel costs milliseconds, not
    solves.
    """
    import dataclasses
    import os
    import sqlite3
    import tempfile

    from repro.witness import Certificate, validate

    def sweep(witness: bool, store: Optional[str] = None) -> Dict:
        cache = QueryCache()
        queries = hits = solves = certificates = 0
        start = time.perf_counter()
        for name in names:
            spec = get(name)
            config = dataclasses.replace(
                spec_config(spec), witness=witness, store=store
            )
            outcome = verify_target(spec.target(), config, cache=cache)
            stats = outcome.solver_stats()
            queries += stats["queries"]
            hits += stats["cache_hits"]
            solves += stats["solve_calls"]
            certificates += outcome.witnesses or 0
        return {
            "queries": queries,
            "cache_hits": hits,
            "solve_calls": solves,
            "certificates": certificates,
            "seconds": round(time.perf_counter() - start, 3),
        }

    def best_of(witness: bool, rounds: int = 3) -> Dict:
        return min((sweep(witness) for _ in range(rounds)),
                   key=lambda row: row["seconds"])

    out: Dict = {"plain": best_of(False), "witnessed": best_of(True)}
    plain, witnessed = out["plain"], out["witnessed"]
    out["identical_counters"] = all(
        plain[key] == witnessed[key]
        for key in ("queries", "cache_hits", "solve_calls")
    )
    out["emission_overhead"] = (
        round(witnessed["seconds"] / plain["seconds"] - 1, 3)
        if plain["seconds"] > 0
        else None
    )

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "obligations.sqlite")
        sweep(True, store=store_path)
        conn = sqlite3.connect(store_path)
        # Content-derived oids dedup identical obligations across specs,
        # so the store can hold fewer rows than certificates collected.
        valid_rows, witness_rows = conn.execute(
            "SELECT SUM(valid), COUNT(witness) FROM obligations"
        ).fetchone()
        texts = [
            row[0]
            for row in conn.execute(
                "SELECT witness FROM obligations WHERE witness IS NOT NULL"
            )
        ]
        conn.close()
        start = time.perf_counter()
        for text in texts:
            validate(Certificate.from_json(text))
        seconds = time.perf_counter() - start
    out["revalidate"] = {
        "certificates": len(texts),
        "stored_valid": int(valid_rows or 0),
        "stored_witnesses": int(witness_rows or 0),
        "seconds": round(seconds, 3),
        "ms_per_certificate": (
            round(1000 * seconds / len(texts), 3) if texts else None
        ),
    }
    return out


# ---------------------------------------------------------------------------
# Inner-loop microbenchmarks
# ---------------------------------------------------------------------------


def microbench_terms(iterations: int = 40, width: int = 200) -> Dict:
    """Term-layer throughput: rebuild the same and/or/atom structure and
    measure how much of it the interner absorbs."""
    hits0, misses0 = intern.counters()
    start = time.perf_counter()
    built = 0
    for _ in range(iterations):
        atoms = [
            F.mk_atom("<=", LinExpr.variable(f"v{i}"), LinExpr.variable(f"v{i + 1}"))
            for i in range(width)
        ]
        node = F.mk_and(
            *[F.mk_or(atoms[i], F.mk_not(atoms[(i + 7) % width])) for i in range(width)]
        )
        F.atoms_of(node)
        built += width
    seconds = time.perf_counter() - start
    hits1, misses1 = intern.counters()
    hits, misses = hits1 - hits0, misses1 - misses0
    return {
        "nodes_built": built,
        "seconds": round(seconds, 3),
        "intern_hits": hits,
        "intern_misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else None,
    }


def microbench_simplex(rounds: int = 30, chain: int = 40) -> Dict:
    """Theory-layer throughput: difference-chain bound rounds under
    push/pop, counting pivots per second."""
    profile = SolverProfile()
    simplex = Simplex(profile=profile)
    variables = [LinExpr.variable(f"x{i}") for i in range(chain)]
    for i in range(chain - 1):
        simplex.define(f"d{i}", variables[i] - variables[i + 1])
    start = time.perf_counter()
    for _ in range(rounds):
        simplex.push_state()
        for i in range(chain - 1):
            # x_i <= x_{i+1} - 1: pushes every link of the chain.
            simplex.assert_upper(f"d{i}", DeltaRat(Fraction(-1)), ("u", i))
        simplex.assert_lower("x0", DeltaRat(Fraction(0)), "l")
        simplex.check()
        simplex.pop_state()
    seconds = time.perf_counter() - start
    return {
        "rounds": rounds,
        "seconds": round(seconds, 3),
        "pivots": profile.pivots,
        "bound_asserts": profile.bound_asserts,
        "pivots_per_second": round(profile.pivots / seconds, 1) if seconds > 0 else None,
    }


def microbench_sat(num_vars: int = 150, num_clauses: int = 600) -> Dict:
    """SAT-layer throughput: a planted (satisfiable) random 3-SAT
    instance, counting propagations per second."""
    rng = random.Random(1234)
    planted = [rng.choice([True, False]) for _ in range(num_vars)]
    solver = CDCLSolver(num_vars)
    for _ in range(num_clauses):
        vars_ = rng.sample(range(1, num_vars + 1), 3)
        clause = [v if rng.random() < 0.7 else -v for v in vars_]
        pick = rng.choice(range(3))
        v = abs(clause[pick])
        clause[pick] = v if planted[v - 1] else -v
        solver.add_clause(clause)
    start = time.perf_counter()
    assert solver.solve()
    seconds = time.perf_counter() - start
    profile = solver.profile
    return {
        "num_vars": num_vars,
        "num_clauses": num_clauses,
        "seconds": round(seconds, 3),
        "decisions": profile.decisions,
        "propagations": profile.propagations,
        "conflicts": profile.conflicts,
        "restarts": profile.restarts,
        "propagations_per_second": (
            round(profile.propagations / seconds, 1) if seconds > 0 else None
        ),
    }


def run_microbench() -> Dict:
    return {
        "term_intern": microbench_terms(),
        "simplex_pivot": microbench_simplex(),
        "sat_propagate": microbench_sat(),
    }


# ---------------------------------------------------------------------------
# CI counter guard
# ---------------------------------------------------------------------------

#: Counters the guard compares.  With a pinned ``PYTHONHASHSEED`` (the
#: guard re-executes itself under seed 0 — see :func:`_pin_hash_seed`)
#: they are fully deterministic for a given code state, so the check is
#: runner-stable in a way wall-clock thresholds are not.
GUARD_COUNTERS = ("solve_calls", "pivots")

#: Allowed relative growth before the guard fails.
GUARD_TOLERANCE = 0.20

#: Allowed wall-clock cost of proof-certificate emission on the quick
#: sweep (best-of-three on/off runs; the counters must match exactly).
WITNESS_OVERHEAD_LIMIT = 0.10

#: Counters the guard additionally checks for **exact** equality against
#: the committed ``serial_reference``: the serial backend is required to
#: be byte-identical release over release (same queries, same cache
#: hits, same solves on the pinned quick sweep), not merely within
#: tolerance.
SERIAL_REFERENCE_COUNTERS = ("queries", "cache_hits", "solve_calls")


def guard_counters(results: Dict) -> Dict[str, int]:
    """The counters the regression guard tracks, from a quick run."""
    totals = results["totals"]["incremental"]
    return {key: int(totals.get(key, 0)) for key in GUARD_COUNTERS}


def serial_counters(results: Dict) -> Dict[str, int]:
    """The serial-backend counters pinned exactly by the guard."""
    totals = results["totals"]["incremental"]
    return {key: int(totals.get(key, 0)) for key in SERIAL_REFERENCE_COUNTERS}


def _pin_hash_seed() -> None:
    """Re-exec under ``PYTHONHASHSEED=0`` if string hashing is randomized.

    Dict/set iteration over string-keyed structures (variable names,
    monomials) feeds variable-id assignment and pivot tie-breaking, so
    pivot counts are only reproducible under a fixed hash seed.  The
    guard and the reference writer both pin seed 0 so their numbers
    compare like for like.
    """
    import os
    import subprocess

    if os.environ.get("PYTHONHASHSEED") == "0":
        return
    env = dict(os.environ, PYTHONHASHSEED="0")
    raise SystemExit(subprocess.call([sys.executable] + sys.argv, env=env))


def run_guard(reference_path: str, jobs: int) -> int:
    with open(reference_path) as handle:
        reference = json.load(handle)
    expected = reference.get("quick_reference")
    if not expected:
        print(f"error: {reference_path} has no quick_reference section; "
              f"run --update-reference first", file=sys.stderr)
        return 2
    results = run_workloads(quick=True, jobs=jobs)
    current = guard_counters(results)
    print(render(results))
    failed = False
    for key in GUARD_COUNTERS:
        old = expected.get(key)
        new = current[key]
        if not old:
            print(f"bench-guard: {key}: no reference value, skipping")
            continue
        limit = old * (1 + GUARD_TOLERANCE)
        status = "OK" if new <= limit else "REGRESSION"
        print(f"bench-guard: {key}: reference={old} current={new} "
              f"limit={limit:.0f} [{status}]")
        if new > limit:
            failed = True
    serial_expected = reference.get("serial_reference")
    if serial_expected:
        serial_current = serial_counters(results)
        for key in SERIAL_REFERENCE_COUNTERS:
            old = serial_expected.get(key)
            if old is None:
                continue
            new = serial_current[key]
            status = "OK" if new == old else "CHANGED"
            print(f"bench-guard: serial {key}: reference={old} current={new} "
                  f"[{status}]")
            if new != old:
                failed = True
    else:
        print("bench-guard: no serial_reference section; exact serial check skipped")
    warm_store = results.get("warm_store")
    if warm_store is not None:
        warm_solves = warm_store["warm"]["solve_calls"]
        status = "OK" if warm_solves == 0 else "REGRESSION"
        print(f"bench-guard: warm-store solve_calls: expected=0 "
              f"current={warm_solves} [{status}]")
        if warm_solves != 0:
            failed = True
    if not run_witness_guard(results):
        failed = True
    if not run_chaos_guard(results):
        failed = True
    if failed:
        print("bench-guard: FAILED (counters regressed beyond tolerance or "
              "serial backend diverged)", file=sys.stderr)
        return 1
    print("bench-guard: passed")
    return 0


def run_witness_guard(results: Dict) -> bool:
    """The witness leg: emission must leave every counter untouched and
    cost < :data:`WITNESS_OVERHEAD_LIMIT` wall clock on the quick
    sweep, and every emitted certificate must pass the trusted
    validator (``revalidate`` covers the whole stored sweep)."""
    witness = results.get("witness")
    if witness is None:
        print("bench-guard: no witness section, skipping")
        return True
    overhead = witness["emission_overhead"]
    revalidated = witness["revalidate"]["certificates"]
    expected = witness["revalidate"]["stored_valid"]
    ok = (
        witness["identical_counters"]
        and (overhead is None or overhead <= WITNESS_OVERHEAD_LIMIT)
        and revalidated == expected
        and revalidated > 0
    )
    status = "OK" if ok else "REGRESSION"
    print(f"bench-guard: witness: identical_counters="
          f"{witness['identical_counters']} overhead={overhead} "
          f"(limit {WITNESS_OVERHEAD_LIMIT}) revalidated="
          f"{revalidated}/{expected} [{status}]")
    return ok


def run_chaos_guard(results: Dict) -> bool:
    """The recovery-path guard leg: the quick unroll sweep through the
    process backend with **every worker killed** must reproduce the
    serial sweep's counters exactly — the supervisor's serial re-solve
    is the same engine, so recovery may never change what gets solved.
    """
    from repro import faults

    serial = results["workloads"]["registry-unroll"]["incremental"]
    expected = {key: serial[key] for key in SERIAL_REFERENCE_COUNTERS}
    cache = QueryCache()
    queries = hits = solves = recovered = 0
    faults.install("worker-kill@*")
    try:
        for name in QUICK_UNROLL_NAMES:
            spec = get(name)
            config = spec_config(spec)
            config.backend = "process"
            config.jobs = 2
            outcome = verify_target(spec.target(), config, cache=cache)
            stats = outcome.solver_stats()
            queries += stats["queries"]
            hits += stats["cache_hits"]
            solves += stats["solve_calls"]
            if outcome.recovery is not None:
                recovered += 1
    finally:
        faults.install(None)
    current = {"queries": queries, "cache_hits": hits, "solve_calls": solves}
    ok = current == expected and recovered == len(QUICK_UNROLL_NAMES)
    status = "OK" if ok else "REGRESSION"
    print(f"bench-guard: chaos (worker-kill@*, process jobs=2): "
          f"serial={expected} recovered={current} "
          f"runs_recovered={recovered}/{len(QUICK_UNROLL_NAMES)} [{status}]")
    return ok


def update_reference(reference_path: str, jobs: int) -> int:
    try:
        with open(reference_path) as handle:
            reference = json.load(handle)
    except FileNotFoundError:
        reference = {}
    results = run_workloads(quick=True, jobs=jobs)
    print(render(results))
    reference["quick_reference"] = guard_counters(results)
    reference["serial_reference"] = serial_counters(results)
    with open(reference_path, "w") as handle:
        json.dump(reference, handle, indent=2)
    print(f"updated quick_reference in {reference_path}: "
          f"{reference['quick_reference']}; serial_reference: "
          f"{reference['serial_reference']}")
    return 0


def render(results: Dict) -> str:
    lines = [
        "bench_solver — obligation discharge, baseline vs incremental",
        f"{'workload':20s} {'side':12s} {'queries':>8s} {'hits':>6s} {'solves':>7s} {'sec':>8s} {'q/s':>8s}",
    ]
    for workload, sides in results["workloads"].items():
        for side, stats in sides.items():
            qps = stats["queries_per_second"]
            lines.append(
                f"{workload:20s} {side:12s} {stats['queries']:8d} {stats['cache_hits']:6d} "
                f"{stats['solve_calls']:7d} {stats['seconds']:8.2f} {qps if qps is not None else '—':>8}"
            )
    totals = results["totals"]
    lines.append(
        f"{'TOTAL':20s} {'baseline':12s} {totals['baseline']['queries']:8d} "
        f"{totals['baseline']['cache_hits']:6d} {totals['baseline']['solve_calls']:7d} "
        f"{totals['baseline']['seconds']:8.2f}"
    )
    lines.append(
        f"{'TOTAL':20s} {'incremental':12s} {totals['incremental']['queries']:8d} "
        f"{totals['incremental']['cache_hits']:6d} {totals['incremental']['solve_calls']:7d} "
        f"{totals['incremental']['seconds']:8.2f}"
    )
    lines.append(
        f"solve-call reduction: {totals['solve_call_reduction']}x    "
        f"wall-time speedup: {totals['wall_time_speedup']}x"
    )
    if "pivots" in totals["incremental"]:
        lines.append(f"incremental pivots: {totals['incremental']['pivots']}")
    threaded = results.get("threaded_invariant")
    if threaded:
        lines.append(
            f"threaded invariant sweep (jobs={threaded['jobs']}): "
            f"{threaded['solve_calls']} solves in {threaded['seconds']}s "
            f"(serial {threaded['serial_seconds']}s, "
            f"{threaded['speedup_vs_serial']}x)"
        )
    process = results.get("process_jobs")
    if process:
        for jobs_key, row in process["by_jobs"].items():
            identical = "identical counters" if row["identical_to_serial"] else "COUNTERS DIVERGED"
            lines.append(
                f"process unroll sweep (jobs={jobs_key}): {row['solve_calls']} solves "
                f"in {row['seconds']}s (serial {process['serial_seconds']}s, "
                f"{row['speedup_vs_serial']}x, {identical})"
            )
    warm_store = results.get("warm_store")
    if warm_store:
        cold, warm = warm_store["cold"], warm_store["warm"]
        lines.append(
            f"persistent store: cold {cold['seconds']}s ({cold['solve_calls']} solves, "
            f"{cold['store_writes']} writes) -> warm {warm['seconds']}s "
            f"({warm['solve_calls']} solves, {warm['store_hits']} store hits), "
            f"{warm_store['speedup']}x"
        )
    witness = results.get("witness")
    if witness:
        revalidate = witness["revalidate"]
        identical = (
            "identical counters"
            if witness["identical_counters"]
            else "COUNTERS DIVERGED"
        )
        lines.append(
            f"witnesses: emission {witness['plain']['seconds']}s -> "
            f"{witness['witnessed']['seconds']}s "
            f"({witness['emission_overhead']:+.1%}, {identical}); "
            f"revalidated {revalidate['certificates']} certificates in "
            f"{revalidate['seconds']}s "
            f"({revalidate['ms_per_certificate']} ms each, zero solves)"
        )
    micro = results.get("microbench")
    if micro:
        lines.append("")
        lines.append("microbench — inner loops in isolation")
        term = micro["term_intern"]
        lines.append(
            f"  term layer:   {term['nodes_built']} nodes in {term['seconds']}s, "
            f"intern hit rate {term['hit_rate']}"
        )
        spx = micro["simplex_pivot"]
        lines.append(
            f"  simplex:      {spx['pivots']} pivots / {spx['bound_asserts']} asserts "
            f"in {spx['seconds']}s ({spx['pivots_per_second']} pivots/s)"
        )
        sat = micro["sat_propagate"]
        lines.append(
            f"  CDCL:         {sat['propagations']} propagations, {sat['conflicts']} "
            f"conflicts, {sat['restarts']} restarts in {sat['seconds']}s "
            f"({sat['propagations_per_second']} props/s)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small subset for CI smoke")
    parser.add_argument("--jobs", type=int, default=1, help="discharge parallelism")
    parser.add_argument(
        "--json-out", metavar="PATH", default=None, help="write results as JSON"
    )
    parser.add_argument(
        "--no-microbench", action="store_true", help="skip the inner-loop microbenchmarks"
    )
    parser.add_argument(
        "--guard",
        metavar="PATH",
        default=None,
        help="quick run; fail on >20%% counter regression vs PATH's quick_reference",
    )
    parser.add_argument(
        "--update-reference",
        metavar="PATH",
        default=None,
        help="quick run; write the counters into PATH's quick_reference section",
    )
    args = parser.parse_args(argv)

    if args.guard:
        _pin_hash_seed()
        return run_guard(args.guard, jobs=args.jobs)
    if args.update_reference:
        _pin_hash_seed()
        return update_reference(args.update_reference, jobs=args.jobs)

    results = run_workloads(quick=args.quick, jobs=args.jobs)
    if not args.no_microbench:
        results["microbench"] = run_microbench()
    print(render(results))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
