"""Solver-stack benchmark: incremental discharge vs the pre-PR baseline.

Measures, over the registry algorithms, the cost of discharging all
verification obligations two ways:

* **baseline** — a faithful replica of the pre-incremental solver layer:
  a fresh ``Encoder`` + ``SMTSolver`` per query, raw-AST cache keys
  (alpha-trivial duplicates miss), every refuted ``is_valid`` re-encoded
  and re-solved a second time by ``find_model``, obligations strictly
  serial, no state shared between Houdini rounds or the final
  verification.
* **incremental** — the current stack: obligations grouped by shared
  path prefix, each group discharged under one pushed
  :class:`SolverContext` (conjoined goals, model-guided refinement),
  refuted checks returning their model from the refuting solve, and one
  normalized-query :class:`QueryCache` shared across the whole sweep.

Reported per workload and in total: entailment queries asked, DPLL(T)
solve calls actually executed, queries per second, and wall-clock time.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_solver.py [--quick] \
        [--jobs N] [--json-out BENCH_solver.json]

``--quick`` runs a small subset (seconds, for CI smoke); the default
sweep covers every registry algorithm in the unroll regime, the correct
ones in the invariant regime, and an annotation-free Houdini run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lang import ast
from repro.solver import formula as F
from repro.solver.encode import Encoder
from repro.solver.smt import SMTSolver
from repro.solver.context import QueryCache
from repro.target.transform import TargetProgram
from repro.verify.houdini import default_candidates, infer_invariants, peel_loops
from repro.verify.vcgen import VCGenerator
from repro.verify.verifier import (
    ObligationChecker,
    VerificationConfig,
    _bind_psi,
    bind_command,
    bind_expr,
    verify_target,
)

from repro.algorithms import all_specs, get
from repro.pipeline import spec_config


# ---------------------------------------------------------------------------
# The pre-PR baseline, replicated
# ---------------------------------------------------------------------------


class LegacyValidityChecker:
    """The seed-era validity interface: raw keys, double-solve refutations."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple, bool] = {}
        self.queries = 0
        self.cache_hits = 0
        self.solve_calls = 0

    def _solve(self, goal: ast.Expr, premises: Tuple[ast.Expr, ...]):
        self.solve_calls += 1
        encoder = Encoder()
        solver = SMTSolver()
        for premise in premises:
            solver.add(encoder.boolean(premise))
        solver.add(F.mk_not(encoder.boolean(goal)))
        return solver.check()

    def is_valid(self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()) -> bool:
        premises = tuple(premises)
        key = (goal, premises)
        self.queries += 1
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        answer = self._solve(goal, premises).is_unsat
        self._cache[key] = answer
        return answer

    def find_model(self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()):
        # The pre-PR find_model had no cache: always a full second solve.
        result = self._solve(goal, tuple(premises))
        if result.is_unsat:
            return None
        return result.arith_model, result.bool_model


class LegacyObligationChecker(ObligationChecker):
    """Serial, one-shot discharge with the solve-twice refutation path."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.legacy_validity = LegacyValidityChecker()

    def check(self, obligation):
        premises = self.premises_for(obligation)
        if self.legacy_validity.is_valid(obligation.goal, premises):
            return None
        if not self.collect_models:
            return self._failure(obligation, False, None)
        model = self.legacy_validity.find_model(obligation.goal, premises)
        if model is None:
            return None
        return self._failure(obligation, False, model)

    def check_all(self, obligations, skip=None, on_failure=None, batch=True):
        failures = []
        for obligation in obligations:
            if skip is not None and skip(obligation):
                continue
            failure = self.check(obligation)
            if failure is not None:
                failures.append(failure)
                if on_failure is not None:
                    on_failure(obligation)
        return failures


def legacy_verify(target: TargetProgram, config: VerificationConfig):
    """The pre-PR ``verify_target`` control flow, counter-instrumented."""
    body = bind_command(target.body, config.bindings)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    assumptions = [a for a in assumptions if a != ast.TRUE]

    generator = VCGenerator(
        unroll_limit=config.unroll_limit,
        use_invariants=(config.mode == "invariant"),
    )
    generator.run(body)
    checker = LegacyObligationChecker(psi, assumptions, use_lemmas=config.use_lemmas)
    failures = checker.check_all(generator.obligations)
    return failures, checker.legacy_validity


def legacy_houdini(target: TargetProgram, config: VerificationConfig, peel: int = 1):
    """The pre-PR Houdini loop: one raw-keyed checker for the rounds, a
    fresh checker re-solving everything for the final verification."""
    pool = default_candidates(target, config.bindings)
    body = peel_loops(bind_command(target.body, config.bindings), peel)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    checker = LegacyObligationChecker(psi, assumptions, collect_models=False)

    surviving = list(pool)
    for _ in range(64):
        generator = VCGenerator(use_invariants=True, extra_invariants=tuple(surviving))
        generator.run(body)
        bad = set()
        for obligation in generator.obligations:
            if obligation.tag not in ("invariant-entry", "invariant-preserved"):
                continue
            label = obligation.label
            if not (isinstance(label, tuple) and label[0] == "extra"):
                continue
            if label[1] in bad:
                continue
            if checker.check(obligation) is not None:
                bad.add(label[1])
        if not bad:
            break
        surviving = [inv for k, inv in enumerate(surviving) if k not in bad]

    generator = VCGenerator(use_invariants=True, extra_invariants=tuple(surviving))
    generator.run(body)
    final = LegacyObligationChecker(psi, assumptions)
    failures = final.check_all(generator.obligations)
    return failures, (checker.legacy_validity, final.legacy_validity)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _strip_invariants(cmd: ast.Command) -> ast.Command:
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[_strip_invariants(c) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(cmd.cond, _strip_invariants(cmd.then), _strip_invariants(cmd.orelse))
    if isinstance(cmd, ast.While):
        return ast.While(cmd.cond, _strip_invariants(cmd.body), ())
    return cmd


def _bare_target(name: str) -> TargetProgram:
    target = get(name).target()
    return TargetProgram(
        target.function, _strip_invariants(target.body), target.cost_bound, target.aligned_only
    )


def run_workloads(quick: bool, jobs: int) -> Dict:
    unroll_names = (
        ["noisy_max", "svt", "bad_svt_no_budget"]
        if quick
        else [s.name for s in all_specs()]
    )
    invariant_names = (
        ["svt"] if quick else [s.name for s in all_specs(include_buggy=False)]
    )
    houdini_names = ["noisy_max"]

    results: Dict = {"workloads": {}, "quick": quick, "jobs": jobs}

    def record(workload: str, side: str, queries: int, hits: int, solves: int, seconds: float) -> None:
        entry = results["workloads"].setdefault(workload, {})
        entry[side] = {
            "queries": queries,
            "cache_hits": hits,
            "solve_calls": solves,
            "seconds": round(seconds, 3),
            "queries_per_second": round(queries / seconds, 2) if seconds > 0 else None,
        }

    # -- baseline ------------------------------------------------------------
    queries = hits = solves = 0
    start = time.perf_counter()
    for name in unroll_names:
        spec = get(name)
        _, validity = legacy_verify(spec.target(), spec_config(spec))
        queries += validity.queries
        hits += validity.cache_hits
        solves += validity.solve_calls
    record("registry-unroll", "baseline", queries, hits, solves, time.perf_counter() - start)

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in invariant_names:
        spec = get(name)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        _, validity = legacy_verify(spec.target(), config)
        queries += validity.queries
        hits += validity.cache_hits
        solves += validity.solve_calls
    record("registry-invariant", "baseline", queries, hits, solves, time.perf_counter() - start)

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in houdini_names:
        spec = get(name)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        _, validities = legacy_houdini(_bare_target(name), config)
        for validity in validities:
            queries += validity.queries
            hits += validity.cache_hits
            solves += validity.solve_calls
    record("houdini", "baseline", queries, hits, solves, time.perf_counter() - start)

    # -- incremental ---------------------------------------------------------
    cache = QueryCache()

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in unroll_names:
        spec = get(name)
        config = spec_config(spec)
        config.jobs = jobs
        outcome = verify_target(spec.target(), config, cache=cache)
        stats = outcome.solver_stats()
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
    record("registry-unroll", "incremental", queries, hits, solves, time.perf_counter() - start)

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in invariant_names:
        spec = get(name)
        config = VerificationConfig(
            mode="invariant", assumptions=spec.assumption_exprs(), jobs=jobs
        )
        outcome = verify_target(spec.target(), config, cache=cache)
        stats = outcome.solver_stats()
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
    record("registry-invariant", "incremental", queries, hits, solves, time.perf_counter() - start)

    queries = hits = solves = 0
    start = time.perf_counter()
    for name in houdini_names:
        spec = get(name)
        config = VerificationConfig(
            mode="invariant", assumptions=spec.assumption_exprs(), jobs=jobs
        )
        result = infer_invariants(_bare_target(name), config, peel=1, cache=cache)
        stats = result.solver_stats  # whole run: pruning rounds + final
        queries += stats["queries"]
        hits += stats["cache_hits"]
        solves += stats["solve_calls"]
    record("houdini", "incremental", queries, hits, solves, time.perf_counter() - start)

    # -- totals ---------------------------------------------------------------
    totals: Dict = {}
    for side in ("baseline", "incremental"):
        totals[side] = {
            key: sum(w[side][key] for w in results["workloads"].values())
            for key in ("queries", "cache_hits", "solve_calls")
        }
        totals[side]["seconds"] = round(
            sum(w[side]["seconds"] for w in results["workloads"].values()), 3
        )
    base, incr = totals["baseline"], totals["incremental"]
    totals["solve_call_reduction"] = (
        round(base["solve_calls"] / incr["solve_calls"], 2) if incr["solve_calls"] else None
    )
    totals["wall_time_speedup"] = (
        round(base["seconds"] / incr["seconds"], 2) if incr["seconds"] else None
    )
    results["totals"] = totals
    return results


def render(results: Dict) -> str:
    lines = [
        "bench_solver — obligation discharge, baseline vs incremental",
        f"{'workload':20s} {'side':12s} {'queries':>8s} {'hits':>6s} {'solves':>7s} {'sec':>8s} {'q/s':>8s}",
    ]
    for workload, sides in results["workloads"].items():
        for side, stats in sides.items():
            qps = stats["queries_per_second"]
            lines.append(
                f"{workload:20s} {side:12s} {stats['queries']:8d} {stats['cache_hits']:6d} "
                f"{stats['solve_calls']:7d} {stats['seconds']:8.2f} {qps if qps is not None else '—':>8}"
            )
    totals = results["totals"]
    lines.append(
        f"{'TOTAL':20s} {'baseline':12s} {totals['baseline']['queries']:8d} "
        f"{totals['baseline']['cache_hits']:6d} {totals['baseline']['solve_calls']:7d} "
        f"{totals['baseline']['seconds']:8.2f}"
    )
    lines.append(
        f"{'TOTAL':20s} {'incremental':12s} {totals['incremental']['queries']:8d} "
        f"{totals['incremental']['cache_hits']:6d} {totals['incremental']['solve_calls']:7d} "
        f"{totals['incremental']['seconds']:8.2f}"
    )
    lines.append(
        f"solve-call reduction: {totals['solve_call_reduction']}x    "
        f"wall-time speedup: {totals['wall_time_speedup']}x"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small subset for CI smoke")
    parser.add_argument("--jobs", type=int, default=1, help="discharge parallelism")
    parser.add_argument(
        "--json-out", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)

    results = run_workloads(quick=args.quick, jobs=args.jobs)
    print(render(results))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
