"""Table 1 benchmark: type checking and verification per algorithm.

``pytest benchmarks/bench_table1.py --benchmark-only`` times each row's
type check and both verification regimes; the final test prints the
assembled table (compare against the paper's Table 1 and the recorded
run in EXPERIMENTS.md).
"""

import pytest

from benchmarks.table1 import TABLE1_ORDER, generate_table1, render_table1
from repro.algorithms import get
from repro.core.checker import check_function
from repro.verify.verifier import VerificationConfig, verify_target

ROWS = [(name, extra, f"{name}{'_n1' if extra else ''}") for name, extra in TABLE1_ORDER]


@pytest.mark.parametrize("name,extra,row_id", ROWS, ids=[r[2] for r in ROWS])
def test_typecheck_time(benchmark, name, extra, row_id):
    spec = get(name)
    function = spec.function()
    result = benchmark.pedantic(lambda: check_function(function), rounds=3, iterations=1)
    assert result.body is not None


@pytest.mark.parametrize("name,extra,row_id", ROWS, ids=[r[2] for r in ROWS])
def test_verification_time_invariant_regime(benchmark, name, extra, row_id):
    spec = get(name)
    target = spec.target()
    config = VerificationConfig(
        mode="invariant",
        bindings=dict(extra or {}),
        assumptions=spec.assumption_exprs(),
    )
    outcome = benchmark.pedantic(lambda: verify_target(target, config), rounds=1, iterations=1)
    assert outcome.verified, outcome.describe()


@pytest.mark.parametrize("name,extra,row_id", ROWS, ids=[r[2] for r in ROWS])
def test_verification_time_fixed_regime(benchmark, name, extra, row_id):
    spec = get(name)
    target = spec.target()
    bindings = dict(spec.fixed_bindings)
    bindings.update(extra or {})
    config = VerificationConfig(
        mode="unroll",
        bindings=bindings,
        assumptions=spec.assumption_exprs(),
        unroll_limit=16,
    )
    outcome = benchmark.pedantic(lambda: verify_target(target, config), rounds=1, iterations=1)
    assert outcome.verified, outcome.describe()


def test_print_table1(capsys):
    """Assemble and print the full table (the paper's Table 1 shape)."""
    rows = generate_table1()
    with capsys.disabled():
        print()
        print(render_table1(rows))
    assert all(row.verified for row in rows)
    # Shape claims of the paper: everything within seconds, and far below
    # the coupling-based verifier's quoted times.
    for row in rows:
        assert row.typecheck_seconds < 3.0
        assert row.fixed_seconds < 60.0
        if row.coupling_seconds and row.invariant_seconds:
            assert row.invariant_seconds < row.coupling_seconds
