"""Section 6.4: annotation-inference benchmarks.

Times the discovery of sampling annotations from the paper's heuristic
pools (branch-condition selectors, small-arithmetic alignments) and the
Houdini invariant inference that makes Report Noisy Max verify without
any manual invariants.
"""


from repro.algorithms import get
from repro.automation.inference import infer_annotations
from repro.lang import ast
from repro.verify.houdini import infer_invariants
from repro.verify.verifier import VerificationConfig


def test_noisy_max_annotation_discovery(benchmark):
    spec = get("noisy_max")
    config = VerificationConfig(
        mode="unroll",
        bindings={"size": 3},
        assumptions=spec.assumption_exprs(),
        unroll_limit=5,
        collect_models=False,
    )
    result = benchmark.pedantic(
        lambda: infer_annotations(spec.function(), config), rounds=1, iterations=1
    )
    assert result.found
    selector, _ = result.annotations["eta"]
    assert ast.selector_uses_shadow(selector)


def test_svt_annotation_discovery(benchmark):
    spec = get("svt")
    config = VerificationConfig(
        mode="unroll",
        bindings={"size": 3, "N": 1},
        assumptions=spec.assumption_exprs(),
        unroll_limit=5,
        collect_models=False,
    )
    result = benchmark.pedantic(
        lambda: infer_annotations(spec.function(), config, max_candidates=600),
        rounds=1,
        iterations=1,
    )
    assert result.found


def test_houdini_noisy_max(benchmark):
    spec = get("noisy_max")
    config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
    target = spec.target()
    result = benchmark.pedantic(
        lambda: infer_invariants(target, config, peel=1), rounds=1, iterations=1
    )
    assert result.outcome.verified
