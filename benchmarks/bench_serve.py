"""Service-mode load benchmark: ``repro serve`` under client concurrency.

Boots an in-process :class:`~repro.serve.server.VerifyServer` on a unix
socket, then measures the client-observed cost of verify requests
through the full wire path (handshake, JSON framing, event streaming,
worker dispatch, warm caches):

* **cold** — one client, first pass over the registry rows: every
  request executes the pipeline (the price a one-shot CLI run pays).
* **warm** — concurrency 1, 4 and 8: every client loops over the same
  rows; requests are served from the stage memo, so this isolates the
  service overhead (socket + JSON + scheduling) and shows how the single
  warm cache multiplexes across connections.

Reported per phase: requests/sec and p50/p95/max request latency in
milliseconds.  Correctness is asserted, not assumed: every warm result
must be cache-served and carry the same verdict as its cold run.

Usage::

    PYTHONPATH=src:. python benchmarks/bench_serve.py [--quick] \
        [--json-out serve.json] [--update BENCH_solver.json]

``--quick`` sweeps three registry rows with fewer warm rounds (CI
smoke); the default covers the whole non-buggy registry.  ``--update``
rewrites the committed ``BENCH_solver.json`` in place, replacing its
top-level ``serve`` section with this run's numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro import __version__
from repro.algorithms import registry
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread

QUICK_SPECS = ("svt", "noisy_max", "partial_sum")

#: Warm rounds per client (each round = one sweep over the spec list).
QUICK_ROUNDS = 5
FULL_ROUNDS = 20

CONCURRENCY_LEVELS = (1, 4, 8)


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _phase_stats(latencies: List[float], seconds: float) -> Dict[str, float]:
    return {
        "requests": len(latencies),
        "seconds": round(seconds, 3),
        "requests_per_second": round(len(latencies) / seconds, 2) if seconds else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
        "max_ms": round(max(latencies) * 1000, 3) if latencies else 0.0,
    }


def _timed_sweep(client: ServeClient, specs, latencies: List[float]) -> List[Dict]:
    results = []
    for name in specs:
        start = time.perf_counter()
        result = client.verify(spec=name)
        latencies.append(time.perf_counter() - start)
        results.append(result)
    return results


def _warm_phase(sock: str, specs, concurrency: int, rounds: int) -> Dict[str, float]:
    latencies_per_client: List[List[float]] = [[] for _ in range(concurrency)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(concurrency + 1)

    def worker(slot: int) -> None:
        try:
            with ServeClient(socket_path=sock) as client:
                barrier.wait()
                for _ in range(rounds):
                    for result in _timed_sweep(client, specs, latencies_per_client[slot]):
                        assert result["cached"], "warm request missed the stage memo"
        except BaseException as err:
            errors.append(err)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise errors[0]
    latencies = [sample for bucket in latencies_per_client for sample in bucket]
    return _phase_stats(latencies, seconds)


def run_benchmark(quick: bool = False) -> Dict:
    specs = list(QUICK_SPECS) if quick else [
        name for name in registry.names(include_buggy=False)
    ]
    rounds = QUICK_ROUNDS if quick else FULL_ROUNDS
    sock = os.path.join(tempfile.mkdtemp(prefix="repro-bench-serve-"), "bench.sock")

    results: Dict = {
        "version": __version__,
        "python": platform.python_version(),
        "specs": specs,
        "rounds_per_client": rounds,
    }
    with ServerThread(socket_path=sock, max_concurrent=8):
        # Cold: one client, first pass — every request runs the pipeline.
        cold_latencies: List[float] = []
        start = time.perf_counter()
        with ServeClient(socket_path=sock) as client:
            cold_results = _timed_sweep(client, specs, cold_latencies)
        results["cold"] = _phase_stats(cold_latencies, time.perf_counter() - start)
        verdicts = {r["name"]: r["outcome"]["verified"] for r in cold_results}
        assert all(verdicts.values()), f"unexpected refutation: {verdicts}"

        # Warm: the stage memo serves every request; scale client count.
        warm: Dict[str, Dict] = {}
        for concurrency in CONCURRENCY_LEVELS:
            warm[str(concurrency)] = _warm_phase(sock, specs, concurrency, rounds)
        results["warm"] = warm

    cold_p50 = results["cold"]["p50_ms"]
    warm_p50 = results["warm"]["1"]["p50_ms"]
    results["warm_speedup_p50"] = round(cold_p50 / warm_p50, 1) if warm_p50 else None
    return results


def render(results: Dict) -> str:
    lines = [
        f"repro serve load benchmark (v{results['version']}, "
        f"py{results['python']}; {len(results['specs'])} registry rows, "
        f"{results['rounds_per_client']} warm rounds/client)",
        "",
        f"{'phase':<12} {'clients':>7} {'requests':>9} {'req/s':>9} "
        f"{'p50 ms':>9} {'p95 ms':>9} {'max ms':>9}",
    ]

    def row(label: str, clients: int, stats: Dict) -> str:
        return (
            f"{label:<12} {clients:>7} {stats['requests']:>9} "
            f"{stats['requests_per_second']:>9.2f} {stats['p50_ms']:>9.3f} "
            f"{stats['p95_ms']:>9.3f} {stats['max_ms']:>9.3f}"
        )

    lines.append(row("cold", 1, results["cold"]))
    for concurrency, stats in results["warm"].items():
        lines.append(row("warm", int(concurrency), stats))
    if results.get("warm_speedup_p50"):
        lines.append("")
        lines.append(
            f"warm p50 is {results['warm_speedup_p50']}x faster than cold p50 "
            "(stage memo serves the request without a single solver query)"
        )
    return "\n".join(lines)


def update_reference(path: str, results: Dict) -> None:
    with open(path) as handle:
        reference = json.load(handle)
    reference["serve"] = results
    with open(path, "w") as handle:
        json.dump(reference, handle, indent=2)
        handle.write("\n")
    print(f"updated {path} (serve section)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="three rows, fewer rounds (CI smoke)"
    )
    parser.add_argument("--json-out", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--update",
        metavar="BENCH_JSON",
        help="replace the 'serve' section of the committed benchmark JSON",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(quick=args.quick)
    print(render(results))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json_out}", file=sys.stderr)
    if args.update:
        update_reference(args.update, results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
