"""Figures 1, 6, 10, 11, 12: program-transformation benchmarks.

Each figure shows a source program and its transformed target; the
benchmark times the full transformation (parse → type check → lower →
optimize) and asserts the characteristic lines of the figure are
present, so a timing regression or output drift both fail here.
"""

import pytest

from repro.algorithms import get
from repro.core.checker import check_function
from repro.lang.parser import parse_function
from repro.lang.pretty import pretty_command
from repro.target.transform import to_target

FIGURES = [
    ("noisy_max", "Figure 1", "v_eps := q[i] + eta > bq || i == 0 ? eps : v_eps;"),
    ("svt", "Figure 6", "assert(q[i] + q^o[i] + (eta2 + 2) >= Tt + 1);"),
    ("num_svt", "Figure 10", "v_eps := v_eps + eps / 3;"),
    ("partial_sum", "Figure 11", "sum^o := sum^o + q^o[i];"),
    ("smart_sum", "Figure 12", "assert(v_eps <= 2 * eps);"),
]


@pytest.mark.parametrize("name,figure,marker", FIGURES, ids=[f[0] for f in FIGURES])
def test_transformation(benchmark, name, figure, marker):
    source = get(name).source

    def transform():
        function = parse_function(source)
        return to_target(check_function(function))

    target = benchmark.pedantic(transform, rounds=3, iterations=1)
    text = pretty_command(target.body)
    assert marker in text, f"{figure} marker line missing"
