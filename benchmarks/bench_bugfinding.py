"""Sections 1/8: bug finding on transformed programs.

The paper's argument for standard-semantics targets is that off-the-shelf
analyses can find counterexamples in buggy programs.  These benchmarks
time exactly that: refuting the three Lyu-et-al. SVT variants and
extracting a concrete adjacent-inputs + noise witness, plus the
statistical confirmation by the empirical ε estimator.
"""

import pytest

from repro.algorithms import get
from repro.empirical import estimate_epsilon_lower_bound
from repro.verify.verifier import VerificationConfig, verify_target

BUGGY = ["bad_svt_no_threshold_noise", "bad_svt_leaks_value", "bad_svt_no_budget"]


@pytest.mark.parametrize("name", BUGGY)
def test_counterexample_extraction(benchmark, name):
    spec = get(name)
    target = spec.target()
    config = VerificationConfig(
        mode="unroll",
        bindings=dict(spec.fixed_bindings),
        assumptions=spec.assumption_exprs(),
        unroll_limit=8,
    )
    outcome = benchmark.pedantic(lambda: verify_target(target, config), rounds=1, iterations=1)
    assert not outcome.verified
    assert outcome.failures[0].arith_model


def test_statistical_detection(benchmark):
    spec = get("bad_svt_no_threshold_noise")
    base = {"eps": 0.5, "size": 4.0, "T": 0.0, "N": 1.0}
    inputs1 = dict(base, q=(1.0, 1.0, 1.0, 1.0))
    inputs2 = dict(base, q=(-1.0, -1.0, -1.0, -1.0))
    result = benchmark.pedantic(
        lambda: estimate_epsilon_lower_bound(
            spec.reference, inputs1, inputs2, claimed_epsilon=0.5, trials=4000
        ),
        rounds=1,
        iterations=1,
    )
    assert result.violates
