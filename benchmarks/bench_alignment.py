"""Figure 2 and the executable soundness check (Section 5).

Benchmarks the relational alignment validator: running the instrumented
program, rebuilding ``f(H)`` from the annotations, and replaying the
aligned run on the adjacent database.  Also times raw interpretation as
the substrate baseline.
"""

import random

import pytest

from repro.algorithms import get
from repro.semantics.interpreter import RandomNoise, run_function
from repro.semantics.relational import validate_alignment


def test_figure2_trace(benchmark):
    """The concrete Figure 2 scenario, validated end to end."""
    spec = get("noisy_max")
    inputs = {"eps": 1.0, "size": 4.0, "q": (1.0, 2.0, 2.0, 4.0)}
    hats = {"q^o": (1.0, -1.0, 0.0, 0.0), "q^s": (1.0, -1.0, 0.0, 0.0)}
    checked = spec.checked()

    report = benchmark.pedantic(
        lambda: validate_alignment(checked, inputs, hats, [1.0, 2.0, 1.0, 1.0]),
        rounds=20,
        iterations=5,
    )
    assert report.aligned_noise == (1.0, 2.0, 1.0, 3.0)
    assert report.ok


@pytest.mark.parametrize(
    "name", ["noisy_max", "svt", "gap_svt", "smart_sum"]
)
def test_alignment_validation_throughput(benchmark, name):
    spec = get(name)
    checked = spec.checked()
    rng = random.Random(11)
    inputs = spec.example_inputs()
    hats = spec.adjacent_offsets(inputs, rng)
    noise = [rng.uniform(-3, 3) for _ in range(32)]

    report = benchmark.pedantic(
        lambda: validate_alignment(checked, inputs, hats, list(noise)),
        rounds=10,
        iterations=3,
    )
    assert report.ok


@pytest.mark.parametrize("name", ["noisy_max", "svt", "smart_sum"])
def test_interpreter_throughput(benchmark, name):
    spec = get(name)
    function = spec.function()
    inputs = spec.example_inputs()

    def run():
        return run_function(function, inputs, noise=RandomNoise(seed=5))[0]

    result = benchmark.pedantic(run, rounds=10, iterations=10)
    assert result is not None
